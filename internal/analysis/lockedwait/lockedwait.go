// Package lockedwait flags barrier waits performed while a mutex acquired
// in the same function is still held — the classic sleep-holding-a-lock
// deadlock.
//
// A thrifty barrier routes long predicted stalls to parking tiers: the
// waiting goroutine blocks, possibly for the whole barrier interval. If
// it blocks while holding a sync.Mutex, sync.RWMutex or thrifty.Mutex,
// every other goroutine that needs that lock — typically including the
// barrier participants it is waiting for — stalls behind it, and the
// rendezvous can never complete: the sleeper holds the very resource its
// release depends on. (The paper's §3.1 sleep states have the same
// hazard in hardware: a processor must not go to sleep holding a lock
// other processors spin on.)
//
// The analysis is path-aware: each function body gets a control-flow
// graph (internal/analysis/cfg) and a forward may-held lock-set dataflow
// (internal/analysis/lockset) — Lock and RLock add the receiver to the
// set, Unlock and RUnlock remove it, a deferred Unlock keeps it held to
// function exit, and branch joins union the branches (a lock released on
// only one path is still may-held after the join). Any
// Wait/WaitSite/WaitContext/WaitSiteContext call on a thrifty.Barrier
// reached with a non-empty set is reported; unreachable code contributes
// nothing. Function literals are scanned independently (they run on
// other goroutines' stacks). The transitive form — a call made under a
// held lock to a function that reaches a wait — is the lockorder
// analyzer's job.
package lockedwait

import (
	"go/ast"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/cfg"
	"thriftybarrier/internal/analysis/lockset"
)

// Analyzer is the lockedwait analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockedwait",
	Doc: "flags Barrier.Wait* calls made while a mutex acquired in the same " +
		"function is still held (sleep-holding-a-lock deadlock)",
	Run: run,
}

var waitMethods = map[string]bool{
	"Wait": true, "WaitSite": true, "WaitContext": true, "WaitSiteContext": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				scanFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// scanFunc runs the may-held lock-set flow over one function body and
// reports every barrier wait reached with a lock held. Nested function
// literals are skipped by the walk; the outer Inspect in run visits them
// with their own graph and an empty entry set.
func scanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body)
	flow := lockset.Flow(info, g)
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		lockset.WalkBlock(info, b, flow.In[b], func(n ast.Node, held lockset.Set) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := analysis.ReceiverOf(info, call)
			if !ok || !waitMethods[method] || !analysis.IsNamed(recv, analysis.ThriftyPkg, "Barrier") {
				return true
			}
			if len(held) > 0 {
				pass.Reportf(call.Pos(),
					"%s called while mutex %q is held: a parked barrier waiter holding a lock deadlocks every goroutine that needs it (unlock before waiting)",
					"(*thrifty.Barrier)."+method, held.Min())
			}
			return true
		})
	}
}
