// Package lockedwait flags barrier waits performed while a mutex acquired
// in the same function is still held — the classic sleep-holding-a-lock
// deadlock.
//
// A thrifty barrier routes long predicted stalls to parking tiers: the
// waiting goroutine blocks, possibly for the whole barrier interval. If
// it blocks while holding a sync.Mutex, sync.RWMutex or thrifty.Mutex,
// every other goroutine that needs that lock — typically including the
// barrier participants it is waiting for — stalls behind it, and the
// rendezvous can never complete: the sleeper holds the very resource its
// release depends on. (The paper's §3.1 sleep states have the same
// hazard in hardware: a processor must not go to sleep holding a lock
// other processors spin on.)
//
// The analysis is a single in-order scan of each function body: Lock and
// RLock calls add the receiver to the held set, Unlock and RUnlock
// remove it, a deferred Unlock keeps it held to function end, and any
// Wait/WaitSite/WaitContext/WaitSiteContext call on a thrifty.Barrier
// while the set is non-empty is reported. Function literals are scanned
// independently (they run on other goroutines' stacks).
package lockedwait

import (
	"go/ast"
	"go/types"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the lockedwait analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockedwait",
	Doc: "flags Barrier.Wait* calls made while a mutex acquired in the same " +
		"function is still held (sleep-holding-a-lock deadlock)",
	Run: run,
}

var waitMethods = map[string]bool{
	"Wait": true, "WaitSite": true, "WaitContext": true, "WaitSiteContext": true,
}

// lockTypes are the lock implementations tracked by the held-set.
var lockTypes = []struct{ pkg, name string }{
	{"sync", "Mutex"},
	{"sync", "RWMutex"},
	{analysis.ThriftyPkg, "Mutex"},
}

func isLockType(t types.Type) bool {
	for _, lt := range lockTypes {
		if analysis.IsNamed(t, lt.pkg, lt.name) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanFunc(pass, info, fn.Body)
				}
			case *ast.FuncLit:
				scanFunc(pass, info, fn.Body)
			}
			return true
		})
	}
	return nil
}

// scanFunc walks one function body in source order, maintaining the set
// of held mutexes keyed by the receiver expression's printed form.
// Nested function literals are skipped here; the outer Inspect in run
// visits them with a fresh, empty held-set.
func scanFunc(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	held := map[string]ast.Expr{} // receiver text -> acquisition site
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at function end: the lock stays
			// held for the rest of the scan. Don't let the generic call
			// handling below treat it as an immediate release.
			return false
		case *ast.CallExpr:
			recv, method, ok := analysis.ReceiverOf(info, n)
			if !ok {
				return true
			}
			sel := n.Fun.(*ast.SelectorExpr)
			switch {
			case (method == "Lock" || method == "RLock") && isLockType(recv):
				held[types.ExprString(sel.X)] = sel.X
			case (method == "Unlock" || method == "RUnlock") && isLockType(recv):
				delete(held, types.ExprString(sel.X))
			case waitMethods[method] && analysis.IsNamed(recv, analysis.ThriftyPkg, "Barrier"):
				if len(held) > 0 {
					name := anyHeld(held)
					pass.Reportf(n.Pos(),
						"%s called while mutex %q is held: a parked barrier waiter holding a lock deadlocks every goroutine that needs it (unlock before waiting)",
						"(*thrifty.Barrier)."+method, name)
				}
			}
		}
		return true
	})
}

// anyHeld returns a deterministic representative of the held set (the
// lexicographically smallest receiver expression).
func anyHeld(held map[string]ast.Expr) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
