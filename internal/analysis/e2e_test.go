package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"thriftybarrier/internal/analysis/load"
)

// buildThriftyvet compiles the real cmd/thriftyvet binary into a temp
// dir and returns its path plus the module root it was built from.
func buildThriftyvet(t *testing.T) (bin, root string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	root, _, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "thriftyvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/thriftyvet")
	build.Dir = root
	out, err := build.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin, root
}

// runVet runs the built binary and returns its exit code and streams.
func runVet(t *testing.T, bin, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var outBuf, errBuf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("thriftyvet %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, outBuf.String(), errBuf.String()
}

// TestThriftyvetExamplesClean runs the binary over the shipped example
// programs: the documentation must pass its own linter with zero
// diagnostics.
func TestThriftyvetExamplesClean(t *testing.T) {
	bin, root := buildThriftyvet(t)
	code, stdout, stderr := runVet(t, bin, root, "./examples/...", "./cmd/...")
	if code != 0 {
		t.Errorf("thriftyvet over examples/ and cmd/: exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected zero diagnostics, got:\n%s", stdout)
	}
}

// vetReport mirrors the -json document shape.
type vetReport struct {
	Findings []struct {
		Analyzer   string `json:"analyzer"`
		File       string `json:"file"`
		Line       int    `json:"line"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
		Reason     string `json:"reason"`
	} `json:"findings"`
	Directives []struct {
		File   string `json:"file"`
		Line   int    `json:"line"`
		Reason string `json:"reason"`
		Uses   int    `json:"uses"`
	} `json:"directives"`
}

// TestThriftyvetJSONStdoutClean pins the -json contract: stdout carries
// one JSON object and nothing else, in both the clean (exit 0) and the
// flagged (exit 1) case. A stray diagnostic line or debug print on
// stdout breaks every CI consumer piping the report into a tool, so the
// whole stream must unmarshal.
func TestThriftyvetJSONStdoutClean(t *testing.T) {
	bin, root := buildThriftyvet(t)

	t.Run("clean", func(t *testing.T) {
		code, stdout, stderr := runVet(t, bin, root, "-json", "./examples/...", "./cmd/...")
		if code != 0 {
			t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
		}
		var rep vetReport
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout)
		}
		if len(rep.Findings) != 0 {
			t.Errorf("expected zero findings, got %d", len(rep.Findings))
		}
	})

	t.Run("flagged", func(t *testing.T) {
		// A scratch module with one unwired frame constant: framepair
		// fires without needing any import, so the module stays
		// self-contained.
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.23\n")
		writeFile(t, filepath.Join(dir, "frame.go"),
			"package scratch\n\n// FramePing has no direction marker and no codecs.\nconst FramePing byte = 1\n")
		code, stdout, stderr := runVet(t, bin, dir, "-json", ".")
		if code != 1 {
			t.Fatalf("want exit 1, got %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
		}
		var rep vetReport
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout)
		}
		if len(rep.Findings) == 0 {
			t.Fatal("want at least one finding in the JSON document")
		}
		for _, f := range rep.Findings {
			if f.Analyzer != "framepair" || f.Suppressed {
				t.Errorf("unexpected finding: %+v", f)
			}
		}
	})

	t.Run("suppressed rows carry reasons", func(t *testing.T) {
		// thrifty/ has deliberate under-fill directives: the JSON must
		// report those findings as suppressed with the directive's
		// reason, and list the directives with non-zero use counts.
		code, stdout, stderr := runVet(t, bin, root, "-json", "./thrifty/...")
		if code != 0 {
			t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
		}
		var rep vetReport
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout)
		}
		suppressed := 0
		for _, f := range rep.Findings {
			if f.Suppressed {
				suppressed++
				if f.Reason == "" {
					t.Errorf("suppressed finding without a reason: %+v", f)
				}
			} else {
				t.Errorf("unsuppressed finding: %+v", f)
			}
		}
		if suppressed == 0 {
			t.Error("want suppressed findings from thrifty/'s deliberate under-fill tests")
		}
		for _, d := range rep.Directives {
			if d.Uses == 0 {
				t.Errorf("stale directive in report: %+v", d)
			}
		}
	})
}

// TestThriftyvetIgnoresAuditClean runs the -ignores audit over the whole
// module: every suppression directive in the tree must still earn its
// keep. A stale or malformed directive fails here before it fails CI.
func TestThriftyvetIgnoresAuditClean(t *testing.T) {
	bin, root := buildThriftyvet(t)
	code, stdout, stderr := runVet(t, bin, root, "-ignores", "./...")
	if code != 0 {
		t.Fatalf("ignores audit: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "STALE") || strings.Contains(stdout, "MALFORMED") {
		t.Errorf("audit reports problems despite exit 0:\n%s", stdout)
	}
	if !strings.Contains(stdout, "none stale") {
		t.Errorf("audit summary line missing:\n%s", stdout)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
