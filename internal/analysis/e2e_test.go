package analysis_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"

	"thriftybarrier/internal/analysis/load"
)

// TestThriftyvetExamplesClean builds the real cmd/thriftyvet binary and
// runs it over the shipped example programs: the documentation must pass
// its own linter with zero diagnostics.
func TestThriftyvetExamplesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	root, _, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "thriftyvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/thriftyvet")
	build.Dir = root
	out, err := build.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "./examples/...", "./cmd/...")
	cmd.Dir = root
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Errorf("thriftyvet over examples/ and cmd/: %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected zero diagnostics, got:\n%s", stdout.String())
	}
}
