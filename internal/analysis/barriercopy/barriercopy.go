// Package barriercopy flags thrifty.Barrier, thrifty.Mutex, thrifty.Group
// and sim.Engine values that are copied: passed by value, assigned from
// another value, returned by value, or produced as range-loop copies.
//
// The thrifty types embed a noCopy marker, so go vet's copylocks check
// catches many copies at run-of-vet time — but copylocks only understands
// sync.Locker-shaped fields, reports at slightly different places, and is
// easy to leave out of a build pipeline. This analyzer enforces the
// documented "must not be copied after first use" contract directly: a
// copied Barrier splits the per-call-site predictor state and the
// generation counter (two halves of a barrier that each think they are
// whole), and a copied Mutex forks its FIFO queue — both fail in ways the
// runtime cannot detect. A copied thrifty.Group forks the registry
// pointer's enclosing value semantics: both copies still share the live
// tables, so the copy *appears* to work until someone zero-initializes
// or replaces one side, at which point lookups silently split between
// two registries resolving the same names to different barriers — a
// rendezvous that never completes. A copied sim.Engine is the event-arena analogue:
// the copy shares the arena, free-list and heap backing arrays until one
// side grows them, after which schedules and cancels split across two
// diverging queues; the pointer-sized sim.Handle, by contrast, is a value
// by design and copies freely.
package barriercopy

import (
	"go/ast"
	"go/types"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the barriercopy analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "barriercopy",
	Doc: "flags thrifty.Barrier, thrifty.Mutex, thrifty.Group and sim.Engine values " +
		"copied by assignment, call argument, return, or range loop",
	Run: run,
}

// guarded lists the types whose by-value copies are reported, with the
// short display name used in diagnostics.
var guarded = []struct{ pkg, name, display string }{
	{analysis.ThriftyPkg, "Barrier", "thrifty.Barrier"},
	{analysis.ThriftyPkg, "Mutex", "thrifty.Mutex"},
	{analysis.ThriftyPkg, "Group", "thrifty.Group"},
	{analysis.SimPkg, "Engine", "sim.Engine"},
}

// guardType reports whether t is (or, transitively through struct and
// array composition, contains) one of the guarded types.
func guardType(t types.Type) (string, bool) {
	return containsGuard(t, map[types.Type]bool{})
}

func containsGuard(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		for _, g := range guarded {
			if analysis.IsNamed(u, g.pkg, g.name) {
				return g.display, true
			}
		}
		return containsGuard(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsGuard(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsGuard(u.Elem(), seen)
	}
	// Pointers, slices, maps, channels and interfaces share the pointee:
	// copying them does not copy the barrier.
	return "", false
}

// copySource reports whether copying expr would duplicate an existing
// value: identifiers, field selections, dereferences, indexing and call
// results all read a live value. Composite literals and conversions of
// them construct a fresh value, which is initialization, not a copy.
func copySource(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr, *ast.CallExpr, *ast.TypeAssertExpr:
		return true
	case *ast.ParenExpr:
		return copySource(e.X)
	}
	return false
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		// Range-clause variables are definitions, not expressions: their
		// type hangs off the object, not the Types map.
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	reportValue := func(pos ast.Node, what string, t types.Type) {
		if t == nil {
			return
		}
		if name, ok := guardType(t); ok {
			pass.Reportf(pos.Pos(), "%s %s by value; %s must not be copied after first use (use a pointer)", what, name, name)
		}
	}

	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			reportValue(field.Type, what, typeOf(field.Type))
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Type.Params, "function takes")
				checkFieldList(n.Type.Results, "function returns")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "function takes")
				checkFieldList(n.Type.Results, "function returns")
			case *ast.CallExpr:
				// Conversions construct, they do not pass.
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					return true
				}
				for _, arg := range n.Args {
					if copySource(arg) {
						reportValue(arg, "call passes", typeOf(arg))
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// `_ = x` evaluates without storing: not a copy.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if copySource(rhs) {
						reportValue(rhs, "assignment copies", typeOf(rhs))
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copySource(v) {
						reportValue(v, "declaration copies", typeOf(v))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					reportValue(n.Value, "range copies", typeOf(n.Value))
				}
				if n.Key != nil {
					reportValue(n.Key, "range copies", typeOf(n.Key))
				}
			}
			return true
		})
	}
	return nil
}
