package barriercopy_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/barriercopy"
)

func TestBarrierCopy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), barriercopy.Analyzer, "barriercopy")
}
