// Package sleeptable validates sleep-state catalogue literals (the
// paper's Table 3 shape, []power.SleepState) at vet time.
//
// The §3.3.2 state-selection loop scans the catalogue shallow-to-deep and
// picks the deepest state whose round-trip transition fits the predicted
// stall. That scan is only correct if the table is monotone: transition
// latency strictly increasing and power strictly decreasing (savings
// strictly increasing) with depth. A non-monotone table makes the scan
// settle on a state that is strictly worse than a neighbour — silently,
// since every individual state is still "valid". internal/power.Validate
// checks this at run time; this analyzer checks every composite literal
// whose element fields are compile-time constants before the code ever
// runs.
//
// Additionally, when the catalogue literal is a field of a configuration
// literal that also carries a constant overprediction cut-off (field
// Cutoff) and a constant nominal barrier interval (field named BIT,
// NominalBIT, Interval or MeanInterval), each state's round trip
// (2×Transition) is checked against Cutoff×BIT: a state whose round trip
// exceeds the cut-off window can never be selected profitably — the
// §3.3.3 cut-off would strike any site that used it.
package sleeptable

import (
	"go/ast"
	"go/constant"
	"go/types"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the sleeptable analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sleeptable",
	Doc: "validates sleep-state table literals: transition latency strictly " +
		"increasing, power strictly decreasing with depth, savings in (0,1], " +
		"and round trips within the configured cut-off window",
	Run: run,
}

// bitFieldNames are accepted spellings of a nominal barrier-interval
// field in a configuration literal.
var bitFieldNames = map[string]bool{
	"BIT": true, "NominalBIT": true, "Interval": true, "MeanInterval": true,
}

// state holds the constant-valued fields of one element literal.
type state struct {
	lit        ast.Expr
	name       string
	savings    constant.Value // float
	transition constant.Value // int (sim.Cycles)
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := info.Types[lit]
		if !ok || !isSleepStateSeq(tv.Type) {
			return true
		}
		states := elements(info, lit)
		checkMonotone(pass, states)
		if cutoff, bit, ok := enclosingCutoffBIT(info, stack); ok {
			checkCutoff(pass, states, cutoff, bit)
		}
		return true
	})
	return nil
}

// isSleepStateSeq reports whether t is a slice or array of
// power.SleepState.
func isSleepStateSeq(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return analysis.IsNamed(u.Elem(), analysis.PowerPkg, "SleepState")
	case *types.Array:
		return analysis.IsNamed(u.Elem(), analysis.PowerPkg, "SleepState")
	}
	return false
}

// elements extracts the constant Savings/Transition fields of each
// element literal; non-literal or non-constant elements yield nil values
// and are skipped by the checks.
func elements(info *types.Info, lit *ast.CompositeLit) []state {
	var out []state
	for _, elt := range lit.Elts {
		el, ok := elt.(*ast.CompositeLit)
		if !ok {
			out = append(out, state{lit: elt})
			continue
		}
		s := state{lit: elt, name: "?"}
		fields := structFields(info, el)
		if v, ok := fields["Name"]; ok && v != nil && v.Kind() == constant.String {
			s.name = constant.StringVal(v)
		}
		s.savings = fields["Savings"]
		s.transition = fields["Transition"]
		out = append(out, s)
	}
	return out
}

// structFields maps field names of a (possibly positional) struct
// literal to their constant values (nil when not constant).
func structFields(info *types.Info, lit *ast.CompositeLit) map[string]constant.Value {
	out := map[string]constant.Value{}
	tv, ok := info.Types[lit]
	if !ok {
		return out
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return out
	}
	constOf := func(e ast.Expr) constant.Value {
		if tv, ok := info.Types[e]; ok {
			return tv.Value
		}
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				out[key.Name] = constOf(kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			out[st.Field(i).Name()] = constOf(elt)
		}
	}
	return out
}

func checkMonotone(pass *analysis.Pass, states []state) {
	for i, s := range states {
		if s.savings != nil {
			f, _ := constant.Float64Val(s.savings)
			if f <= 0 || f > 1 {
				pass.Reportf(s.lit.Pos(), "sleep state %s: savings %v outside (0,1] (power saving is a fraction of TDPmax)", s.name, s.savings)
			}
		}
		if s.transition != nil {
			if t, _ := constant.Int64Val(s.transition); t <= 0 {
				pass.Reportf(s.lit.Pos(), "sleep state %s: non-positive transition latency %v", s.name, s.transition)
			}
		}
		if i == 0 {
			continue
		}
		prev := states[i-1]
		if s.transition != nil && prev.transition != nil {
			cur, _ := constant.Int64Val(s.transition)
			before, _ := constant.Int64Val(prev.transition)
			if cur <= before {
				pass.Reportf(s.lit.Pos(), "sleep state %s: transition latency %v not strictly greater than previous state's %v; the best-fit scan (§3.3.2) assumes latency strictly increasing with depth", s.name, s.transition, prev.transition)
			}
		}
		if s.savings != nil && prev.savings != nil {
			cur, _ := constant.Float64Val(s.savings)
			before, _ := constant.Float64Val(prev.savings)
			if cur <= before {
				pass.Reportf(s.lit.Pos(), "sleep state %s: power saving %v not strictly greater than previous state's %v; deeper states must consume strictly less power", s.name, s.savings, prev.savings)
			}
		}
	}
}

// enclosingCutoffBIT inspects the innermost enclosing struct literal for
// constant Cutoff and nominal-BIT fields.
func enclosingCutoffBIT(info *types.Info, stack []ast.Node) (cutoff float64, bit int64, ok bool) {
	// stack ends at the slice literal itself; its parent chain may run
	// through a KeyValueExpr into the configuration struct literal.
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.KeyValueExpr:
			continue
		case *ast.CompositeLit:
			fields := structFields(info, n)
			cv, hasCut := fields["Cutoff"]
			if !hasCut || cv == nil {
				return 0, 0, false
			}
			var bv constant.Value
			for name := range bitFieldNames {
				if v, has := fields[name]; has && v != nil {
					bv = v
					break
				}
			}
			if bv == nil {
				return 0, 0, false
			}
			cutoff, _ = constant.Float64Val(cv)
			bit, _ = constant.Int64Val(bv)
			return cutoff, bit, true
		default:
			return 0, 0, false
		}
	}
	return 0, 0, false
}

func checkCutoff(pass *analysis.Pass, states []state, cutoff float64, bit int64) {
	if cutoff <= 0 || bit <= 0 {
		return
	}
	window := cutoff * float64(bit)
	for _, s := range states {
		if s.transition == nil {
			continue
		}
		t, _ := constant.Int64Val(s.transition)
		if rt := 2 * t; float64(rt) > window {
			pass.Reportf(s.lit.Pos(), "sleep state %s: round-trip latency %d exceeds the cut-off window %.0f (Cutoff %.2g × BIT %d); the §3.3.3 cut-off disables any site that uses this state", s.name, rt, window, cutoff, bit)
		}
	}
}
