package sleeptable_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/sleeptable"
)

func TestSleepTable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sleeptable.Analyzer, "sleeptable")
}
