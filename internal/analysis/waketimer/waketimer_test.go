package waketimer_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/waketimer"
)

func TestWakeTimer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), waketimer.Analyzer,
		"waketimer", "waketimer/noscope")
}
