// Package waketimer flags raw per-waiter runtime timers — time.NewTimer
// and time.After — in code that participates in the wheel's wake-up
// discipline.
//
// The §3.2 internal wake-up used to be one time.Timer per parked waiter.
// In the many-barrier regime that shape puts thousands of entries in the
// runtime's per-P timer heaps, where every Reset and Stop is an O(log n)
// sift and every expiry wakes through the scheduler's timer machinery.
// The timing wheel (internal/wheel) replaced it with O(1) generation-
// tagged Arm/Cancel on pow2 slot buckets, and the whole barrier stack —
// timedPark's spin-then-wheel policy, the §3.3.2 first-trigger-cancels-
// other race, the zero-alloc steady state — is built on every internal
// wake-up flowing through that one engine. A stray time.NewTimer on a
// wake path silently reintroduces the heap, the allocation, and a second
// cancellation protocol the race tests don't cover.
//
// Scope: a package is checked if its import path is thriftybarrier/thrifty
// (or below), or if it imports the wheel — importing the engine is opting
// into its arming discipline. Within scope the analyzer reports every
// call to time.NewTimer and time.After. time.AfterFunc stays sanctioned:
// the stall watchdog (thrifty/broken.go) deliberately uses a detached
// runtime timer so it still fires when the wheel itself is wedged. Test
// files are exempt — they construct adversarial timer shapes on purpose —
// and the measured-baseline benchmarks carry //lint:ignore waketimer
// directives.
package waketimer

import (
	"go/ast"
	"strconv"
	"strings"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the waketimer analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "waketimer",
	Doc: "flags time.NewTimer/time.After in wheel-backed code: internal " +
		"wake-ups must be armed through the timing wheel (wheel.Arm/Cancel)",
	Run: run,
}

// flagged are the raw-timer constructors the wheel supersedes.
// time.AfterFunc is deliberately absent (stall-watchdog escape hatch).
var flagged = []string{"NewTimer", "After"}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		// Tests build adversarial timer shapes on purpose (e.g. the
		// timedPark reuse-race regression); only production code is held
		// to the wheel discipline.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range flagged {
				if analysis.IsPkgFunc(info, call, "time", name) {
					pass.Reportf(call.Pos(),
						"time.%s in wheel-backed code: arm internal wake-ups through the timing wheel (wheel.Arm/Cancel); a per-waiter runtime timer reintroduces the heap sifts and reuse races the wheel replaced",
						name)
				}
			}
			return true
		})
	}
	return nil
}

// inScope reports whether the package has opted into the wheel's arming
// discipline: it is the barrier package itself (or below it), or it
// imports the wheel.
func inScope(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	if path == analysis.ThriftyPkg || strings.HasPrefix(path, analysis.ThriftyPkg+"/") {
		return true
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == analysis.WheelPkg {
				return true
			}
		}
	}
	return false
}
