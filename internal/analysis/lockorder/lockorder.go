// Package lockorder runs two interprocedural deadlock checks over the
// callgraph package's per-function summaries.
//
// First, locks held across park edges: a call made while a mutex is held
// to a function that (transitively, through package-local calls) reaches
// a thrifty.Barrier wait. The lockedwait analyzer flags the direct form —
// b.Wait() under a held lock in the same function — so this analyzer
// deliberately reports only the transitive form, where the wait hides
// one or more calls away and no single-function scan can see it.
//
// Second, lock-order inversion: lock class A acquired while B is held on
// one path and B acquired while A is held on another (directly or through
// calls) — the classic ABBA deadlock. Classes are canonical cross-
// function keys ("(pkg.Type).field", "pkg.var"), so two functions locking
// the same struct fields in opposite orders are matched even though they
// never mention each other. Self-edges (A while A) are not reported:
// with per-instance locks ("node.mu" on two different nodes) they are
// usually fine, and the single-instance case is a plain double-lock that
// deadlocks the first time it runs — not a vet-shaped bug.
package lockorder

import (
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/callgraph"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags lock-order inversions (ABBA deadlocks) and calls made while " +
		"holding a mutex that transitively reach a barrier wait",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	// Check 1: calls under a held lock that reach a barrier wait.
	for _, s := range g.Summaries {
		for _, c := range s.Calls {
			if len(c.Held) == 0 {
				continue
			}
			trace, ok := g.ReachesWait(c.Callee)
			if !ok {
				continue
			}
			chain := strings.Join(append([]string{c.Callee.Name()}, trace...), " -> ")
			pass.Reportf(c.Pos,
				"%s called while mutex %q is held reaches a barrier wait (%s): a parked waiter holding a lock deadlocks every goroutine that needs it (unlock before calling)",
				c.Callee.Name(), c.HeldDisplay, chain)
		}
	}

	// Check 2: lock-order cycles over the acquired-while-held digraph.
	type edge struct {
		from, to string
		pos      token.Pos
	}
	var edges []edge
	adj := map[string][]string{}
	first := map[[2]string]token.Pos{}
	add := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if _, dup := first[key]; dup {
			return
		}
		first[key] = pos
		edges = append(edges, edge{from, to, pos})
		adj[from] = append(adj[from], to)
	}
	for _, s := range g.Summaries {
		for _, a := range s.Acquires {
			for _, h := range a.Held {
				add(h, a.Class, a.Pos)
			}
		}
		for _, c := range s.Calls {
			if len(c.Held) == 0 {
				continue
			}
			acq := g.TransitiveAcquires(c.Callee)
			classes := make([]string, 0, len(acq))
			for class := range acq {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				for _, h := range c.Held {
					add(h, class, c.Pos)
				}
			}
		}
	}

	for _, e := range edges {
		back, ok := findPath(adj, first, e.to, e.from)
		if !ok {
			continue
		}
		at := pass.Fset.Position(back)
		pass.Reportf(e.pos,
			"acquiring %s while %s is held forms a lock-order cycle with the reverse acquisition at %s:%d: concurrent callers can deadlock (ABBA)",
			e.to, e.from, filepath.Base(at.Filename), at.Line)
	}
	return nil
}

// findPath reports whether to is reachable from from over adj, returning
// the position of the final edge into to — the acquisition that closes
// the cycle — for the diagnostic. BFS over sorted neighbors keeps the
// cited edge deterministic.
func findPath(adj map[string][]string, first map[[2]string]token.Pos, from, to string) (token.Pos, bool) {
	parent := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := append([]string(nil), adj[cur]...)
		sort.Strings(next)
		for _, n := range next {
			if _, seen := parent[n]; seen {
				continue
			}
			parent[n] = cur
			if n == to {
				return first[[2]string{cur, to}], true
			}
			queue = append(queue, n)
		}
	}
	return token.NoPos, false
}
