package lockorder_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockorder")
}
