// Package waitparties checks that the number of goroutines waiting on a
// thrifty.Barrier is consistent with the party count it was constructed
// with, where both are compile-time constants.
//
// A barrier whose constructed party count does not match the number of
// participants deadlocks silently: with too few waiters the generation
// never completes; with too many, "extra" goroutines from the next phase
// complete a generation early and split the rendezvous (§3.2 of the
// paper assumes exactly N participants per barrier instance). Two
// patterns are flagged:
//
//  1. a loop with a constant trip count M spawning goroutines that call
//     Wait on a barrier constructed with constant parties N, M != N;
//  2. a barrier with constant parties N awaited from more than N distinct
//     functions — more static waiting call sites than the barrier has
//     parties means at least two phases' participants meet at one
//     generation.
package waitparties

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the waitparties analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "waitparties",
	Doc: "flags mismatches between a barrier's constant party count and the " +
		"constant number of goroutines (or distinct functions) waiting on it",
	Run: run,
}

// waitMethods are the methods that join a barrier generation.
var waitMethods = map[string]bool{
	"Wait": true, "WaitSite": true, "WaitContext": true, "WaitSiteContext": true,
}

// barrierInfo records one `b := thrifty.New(N, ...)` construction with
// constant N.
type barrierInfo struct {
	obj     types.Object
	parties int64
	pos     token.Pos
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	constInt := func(e ast.Expr) (int64, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return 0, false
		}
		return constant.Int64Val(tv.Value)
	}

	// Pass 1: barrier constructions with a constant party count, bound to
	// a plain identifier.
	barriers := map[types.Object]*barrierInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) < 1 || !analysis.IsPkgFunc(info, call, analysis.ThriftyPkg, "New") {
				return true
			}
			parties, ok := constInt(call.Args[0])
			if !ok {
				return true
			}
			id, ok := assign.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id] // plain `=` assignment
			}
			if obj != nil {
				barriers[obj] = &barrierInfo{obj: obj, parties: parties, pos: call.Pos()}
			}
			return true
		})
	}
	if len(barriers) == 0 {
		return nil
	}

	// barrierOf resolves a Wait-family method call back to a recorded
	// barrier object (the receiver must be a plain identifier).
	barrierOf := func(call *ast.CallExpr) *barrierInfo {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !waitMethods[sel.Sel.Name] {
			return nil
		}
		recv, method, ok := analysis.ReceiverOf(info, call)
		if !ok || !waitMethods[method] || !analysis.IsNamed(recv, analysis.ThriftyPkg, "Barrier") {
			return nil
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil
		}
		return barriers[info.Uses[id]]
	}

	// Pass 2a: constant-trip-count loops spawning waiting goroutines.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			trips, ok := loopTripCount(info, constInt, n)
			if !ok {
				return true
			}
			body := loopBody(n)
			ast.Inspect(body, func(m ast.Node) bool {
				// A nested loop multiplies the spawn count: its go statements
				// are attributed to it (it gets its own visit), not to us.
				switch m.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					return false
				}
				gostmt, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				// Every Wait-family call reachable inside the spawned
				// function body (excluding further nested go statements,
				// which spawn their own participants).
				ast.Inspect(gostmt.Call, func(k ast.Node) bool {
					if inner, ok := k.(*ast.GoStmt); ok && inner != gostmt {
						return false
					}
					call, ok := k.(*ast.CallExpr)
					if !ok {
						return true
					}
					if b := barrierOf(call); b != nil && b.parties != trips {
						pass.Reportf(call.Pos(),
							"loop spawns %d goroutines calling %s on a barrier constructed with %d parties (mismatched rendezvous deadlocks or splits generations)",
							trips, call.Fun.(*ast.SelectorExpr).Sel.Name, b.parties)
					}
					return true
				})
				return true
			})
			return true
		})
	}

	// Pass 2b: more distinct waiting functions than parties.
	type siteSet map[ast.Node]bool
	sites := map[*barrierInfo]siteSet{}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		b := barrierOf(call)
		if b == nil {
			return true
		}
		fn := analysis.EnclosingFunc(stack)
		if fn == nil {
			return true
		}
		if sites[b] == nil {
			sites[b] = siteSet{}
		}
		sites[b][fn] = true
		return true
	})
	ordered := make([]*barrierInfo, 0, len(sites))
	for b := range sites {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
	for _, b := range ordered {
		if n := int64(len(sites[b])); n > b.parties {
			pass.Reportf(b.pos,
				"barrier constructed with %d parties is awaited from %d distinct functions; more waiting functions than parties mixes phases in one generation",
				b.parties, n)
		}
	}
	return nil
}

// loopTripCount recognizes loops with a compile-time-constant trip count:
// `for i := C0; i < M; i++` (and <=), and `for … := range M` over an
// integer constant. It returns the trip count.
func loopTripCount(info *types.Info, constInt func(ast.Expr) (int64, bool), n ast.Node) (int64, bool) {
	switch loop := n.(type) {
	case *ast.ForStmt:
		if loop.Init == nil || loop.Cond == nil || loop.Post == nil {
			return 0, false
		}
		init, ok := loop.Init.(*ast.AssignStmt)
		if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return 0, false
		}
		start, ok := constInt(init.Rhs[0])
		if !ok {
			return 0, false
		}
		cond, ok := loop.Cond.(*ast.BinaryExpr)
		if !ok {
			return 0, false
		}
		// The loop variable must be the one initialized and incremented.
		iv, ok := init.Lhs[0].(*ast.Ident)
		if !ok || !sameIdent(info, cond.X, iv) {
			return 0, false
		}
		if !isIncrOf(info, loop.Post, iv) {
			return 0, false
		}
		bound, ok := constInt(cond.Y)
		if !ok {
			return 0, false
		}
		switch cond.Op {
		case token.LSS:
			return bound - start, true
		case token.LEQ:
			return bound - start + 1, true
		}
		return 0, false
	case *ast.RangeStmt:
		// go1.22 integer range: `for range M`.
		if m, ok := constInt(loop.X); ok {
			return m, true
		}
	}
	return 0, false
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch loop := n.(type) {
	case *ast.ForStmt:
		return loop.Body
	case *ast.RangeStmt:
		return loop.Body
	}
	return nil
}

func sameIdent(info *types.Info, e ast.Expr, id *ast.Ident) bool {
	other, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return objOf(info, other) != nil && objOf(info, other) == objOf(info, id)
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isIncrOf(info *types.Info, post ast.Stmt, iv *ast.Ident) bool {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		return p.Tok == token.INC && sameIdent(info, p.X, iv)
	case *ast.AssignStmt:
		// i += 1
		if p.Tok != token.ADD_ASSIGN || len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return false
		}
		if !sameIdent(info, p.Lhs[0], iv) {
			return false
		}
		lit, ok := p.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == "1"
	}
	return false
}
