package waitparties_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/waitparties"
)

func TestWaitParties(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), waitparties.Analyzer, "waitparties")
}
