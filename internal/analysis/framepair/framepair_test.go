package framepair_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/framepair"
)

func TestFramePair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), framepair.Analyzer, "framepair")
}
