// Package framepair checks exhaustive wiring of a wire-protocol frame
// enum: every Frame* constant the package declares must have a canonical
// encoder, a bounds-checked decoder, and — depending on its direction —
// either a dispatch-switch case (frames this side receives) or an
// encoder call site (frames this side emits). Adding a frame kind
// without wiring both sides fails vet instead of failing at runtime.
//
// The conventions checked are internal/remote's (and COUNTDOWN-style
// protocols generally):
//
//   - frame kinds are byte constants named Frame<Kind>, with a doc
//     comment carrying a direction marker "(client → server)" or
//     "(server → client)" (the ASCII arrow "->" is also accepted);
//   - the encoder for <Kind> is a function or method whose name starts
//     with Encode and whose body writes the Frame<Kind> constant;
//   - the decoder is a function named Decode<Kind> whose last result is
//     an error — the channel through which short payloads and trailing
//     garbage (torn or duplicated frames under transport chaos) are
//     rejected;
//   - a dispatch switch is any switch statement whose cases reference at
//     least two Frame<Kind> constants.
//
// Direction decides which wiring the declaring package must contain: the
// package hosts the server, so inbound (client → server) kinds must
// appear in a dispatch switch here, and outbound (server → client) kinds
// must have their encoder invoked here. The peer side lives in another
// package and is checked by its own conventions (an unhandled frame
// there hits the dispatch default and surfaces as a protocol error).
//
// Packages that declare no Frame* byte constants are ignored.
package framepair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the framepair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "framepair",
	Doc: "checks that every wire frame kind has an encoder, a bounds-checked " +
		"decoder, and dispatch/emission wiring for its direction",
	Run: run,
}

// kind is one Frame* constant and what the package wires up for it.
type kind struct {
	name     string // constant name, e.g. FrameRegister
	short    string // kind name, e.g. Register
	pos      token.Pos
	obj      types.Object
	inbound  bool // doc says client → server
	outbound bool // doc says server → client

	encoded    bool // some Encode* func/method writes the constant
	emitted    bool // such an encoder is called in this package
	dispatched bool // the constant appears in a dispatch switch case
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	kinds := collectKinds(pass)
	if len(kinds) == 0 {
		return nil
	}
	byObj := map[types.Object]*kind{}
	for _, k := range kinds {
		byObj[k.obj] = k
	}

	// Encoders: Encode-prefixed declarations whose bodies reference a
	// frame constant claim that kind; calls to them mark it emitted.
	encoders := map[*types.Func][]*kind{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Encode") {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, k := range constsReferenced(info, fd.Body, byObj) {
				k.encoded = true
				encoders[fn] = append(encoders[fn], k)
			}
		}
	}

	decoders := map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil &&
				strings.HasPrefix(fd.Name.Name, "Decode") {
				decoders[fd.Name.Name] = fd
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeOf(info, n); fn != nil {
					for _, k := range encoders[fn] {
						k.emitted = true
					}
				}
			case *ast.SwitchStmt:
				var cased []*kind
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						cased = append(cased, constsReferenced(info, expr, byObj)...)
					}
				}
				if len(cased) >= 2 {
					for _, k := range cased {
						k.dispatched = true
					}
				}
			}
			return true
		})
	}

	for _, k := range kinds {
		if !k.encoded {
			pass.Reportf(k.pos,
				"frame kind %s has no encoder: no Encode function or method writes the constant, so the frame cannot be produced canonically",
				k.name)
		}
		dec, ok := decoders["Decode"+k.short]
		switch {
		case !ok:
			pass.Reportf(k.pos,
				"frame kind %s has no decoder Decode%s: every frame needs a bounds-checked decoder so torn or duplicated payloads are rejected, not misread",
				k.name, k.short)
		case !returnsError(info, dec):
			pass.Reportf(dec.Pos(),
				"decoder Decode%s does not return an error: without one, short payloads and trailing garbage cannot be rejected",
				k.short)
		}
		switch {
		case !k.inbound && !k.outbound:
			pass.Reportf(k.pos,
				"frame kind %s has no direction marker in its doc comment (\"client → server\" or \"server → client\"): dispatch wiring cannot be checked",
				k.name)
		case k.inbound && !k.dispatched:
			pass.Reportf(k.pos,
				"inbound frame kind %s is not handled by any dispatch switch in this package: the server silently drops it",
				k.name)
		case k.outbound && !k.emitted:
			pass.Reportf(k.pos,
				"outbound frame kind %s is never emitted: its encoder has no call site in this package",
				k.name)
		}
	}
	return nil
}

// collectKinds finds the Frame* byte constants and their direction
// markers, in declaration order.
func collectKinds(pass *analysis.Pass) []*kind {
	var kinds []*kind
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					short, ok := strings.CutPrefix(name.Name, "Frame")
					if !ok || short == "" {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !isByte(obj.Type()) {
						continue
					}
					doc := ""
					if vs.Doc != nil {
						doc = vs.Doc.Text()
					}
					kinds = append(kinds, &kind{
						name:     name.Name,
						short:    short,
						pos:      name.Pos(),
						obj:      obj,
						inbound:  hasArrow(doc, "client", "server"),
						outbound: hasArrow(doc, "server", "client"),
					})
				}
			}
		}
	}
	return kinds
}

// hasArrow reports whether doc contains "from → to" or "from -> to".
func hasArrow(doc, from, to string) bool {
	return strings.Contains(doc, from+" → "+to) || strings.Contains(doc, from+" -> "+to)
}

func isByte(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// constsReferenced returns the frame kinds whose constants appear as
// identifiers anywhere under n, in source order.
func constsReferenced(info *types.Info, n ast.Node, byObj map[types.Object]*kind) []*kind {
	var out []*kind
	seen := map[*kind]bool{}
	ast.Inspect(n, func(sub ast.Node) bool {
		if id, ok := sub.(*ast.Ident); ok {
			if k, ok := byObj[info.Uses[id]]; ok && !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		return true
	})
	return out
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// returnsError reports whether the function's last result is error.
func returnsError(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	n := sig.Results().Len()
	if n == 0 {
		return false
	}
	return types.Identical(sig.Results().At(n-1).Type(), types.Universe.Lookup("error").Type())
}
