// Package analysis is a self-contained, stdlib-only re-creation of the
// core of golang.org/x/tools/go/analysis, sized for this repository's
// linter suite (cmd/thriftyvet). The API mirrors the upstream shapes —
// Analyzer, Pass, Diagnostic — so the analyzers in the sibling packages
// could be ported to the real framework by changing one import, but the
// driver, package loader and golden-file test harness here depend only on
// the standard library (go/ast, go/types, go/importer): the build
// environment deliberately has no module dependencies.
//
// The suite exists because the thrifty barrier's correctness contract is
// easy to violate silently (see DESIGN.md §7): a copied Barrier splits
// predictor state, a mismatched party count deadlocks, an ignored
// ErrBroken leaves a generation broken forever, a Wait under a held lock
// is the classic sleep-holding-a-lock deadlock, and a non-monotone
// sleep-state table breaks the §3.3.2 best-fit selection scan. The
// analyzers catch each of these at vet time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (also the suppression key
// for //lint:ignore directives), user-facing documentation, and the Run
// function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags and
	// suppression directives. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the check to one package and reports diagnostics
	// through the pass.
	Run func(*Pass) error
}

// Pass presents one package to an analyzer: its syntax, type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ThriftyPkg is the import path of the public barrier package whose
// invariants most of the suite guards.
const ThriftyPkg = "thriftybarrier/thrifty"

// PowerPkg is the import path of the sleep-state catalogue package.
const PowerPkg = "thriftybarrier/internal/power"

// SimPkg is the import path of the discrete-event engine package; its
// Engine owns the flat event arena and index heap that the barriercopy
// analyzer guards against by-value copies.
const SimPkg = "thriftybarrier/internal/sim"

// WheelPkg is the import path of the timing-wheel wake-up engine. The
// waketimer analyzer treats importing it as opting into the wheel's
// arming discipline: no raw per-waiter runtime timers on wake-up paths.
const WheelPkg = "thriftybarrier/internal/wheel"

// IsNamed reports whether t (after stripping one level of pointer) is the
// named type pkgPath.name. Matching is by path and name rather than
// object identity, so it works across distinct type-check universes (the
// loader type-checks a package once as an analysis target with test files
// and once as a dependency without them).
func IsNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverOf resolves a method call expression x.M(...) to the named type
// of x and the method name. It returns ok=false for non-method calls.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (recv types.Type, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection.Recv(), sel.Sel.Name, true
}

// IsMethodCall reports whether call invokes method name on the named type
// pkgPath.typeName (value or pointer receiver).
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	recv, method, ok := ReceiverOf(info, call)
	return ok && method == name && IsNamed(recv, pkgPath, typeName)
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. errors.Is, os.Exit).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// EnclosingFunc returns the innermost function literal or declaration in
// stack (a path of ancestor nodes, outermost first).
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// WalkStack walks the files like ast.Inspect but hands the visitor the
// full ancestor stack (outermost first, ending at n itself).
func WalkStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !visit(n, stack) {
				// Inspect sends no closing nil for a skipped subtree.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
