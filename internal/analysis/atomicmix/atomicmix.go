// Package atomicmix flags struct fields that are accessed both through
// sync/atomic operations and through ordinary reads or writes in the
// same package — the exact hazard class of the thrifty barrier's packed
// generation+count word (§3.1's single shared counter) and the timing
// wheel's minimum-arm mailbox.
//
// A word updated with atomic.AddUint64 in one place and read plainly in
// another is a data race even when the plain read "only" feeds a
// heuristic: the compiler may tear, cache, or reorder it, and the race
// detector will (rightly) fire. Holding a mutex around the plain access
// does not help unless every atomic access holds it too — which would
// defeat the point of the atomic. The rule is therefore strict: once any
// access of a field goes through sync/atomic, every access must.
//
// Fields of the typed atomic kinds (atomic.Uint64 and friends) cannot be
// mixed by construction and are ignored; only function-style atomics
// over plain words create the hazard. The check is package-local, like
// the vet unit it runs in: a field mixed across package boundaries is
// out of scope (and would be unexported state escaping anyway).
package atomicmix

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/callgraph"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields reached by both sync/atomic operations and " +
		"plain accesses (mixed-access data race on a shared word)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	// First sweep: every field class with at least one atomic access
	// anywhere in the package, keeping the earliest site as the exemplar
	// the diagnostics cite.
	exemplar := map[string]token.Pos{}
	for _, s := range g.Summaries {
		for class, sites := range s.Atomic {
			for _, p := range sites {
				if cur, ok := exemplar[class]; !ok || p < cur {
					exemplar[class] = p
				}
			}
		}
	}
	if len(exemplar) == 0 {
		return nil
	}

	// Second sweep: report every plain access of those classes, in
	// declaration order so diagnostics are deterministic.
	for _, s := range g.Summaries {
		classes := make([]string, 0, len(s.Plain))
		for class := range s.Plain {
			if _, mixed := exemplar[class]; mixed {
				classes = append(classes, class)
			}
		}
		sort.Strings(classes)
		for _, class := range classes {
			at := pass.Fset.Position(exemplar[class])
			cite := fmt.Sprintf("%s:%d", filepath.Base(at.Filename), at.Line)
			for _, p := range s.Plain[class] {
				pass.Reportf(p,
					"plain access of field %s, which is updated through sync/atomic (e.g. at %s): mixed atomic and plain accesses race on the shared word — make every access atomic",
					class, cite)
			}
		}
	}
	return nil
}
