package atomicmix_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "atomicmix")
}
