package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func buildGraph(t *testing.T, src string) (*Graph, map[string]*types.Func) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := Build(info, []*ast.File{file})
	funcs := map[string]*types.Func{}
	for _, s := range g.Summaries {
		funcs[s.Fn.Name()] = s.Fn
	}
	return g, funcs
}

const src = `package p

import (
	"sync"
	"sync/atomic"
)

type S struct {
	mu  sync.Mutex
	n   uint64
	hot uint64
}

var other sync.Mutex

func (s *S) leaf() {
	atomic.AddUint64(&s.n, 1)
}

func (s *S) mid() {
	s.leaf()
	other.Lock()
	other.Unlock()
}

func (s *S) top() {
	s.mu.Lock()
	s.mid()
	s.mu.Unlock()
}

func (s *S) plainReader() uint64 {
	return s.n + s.hot
}
`

func TestCallsAndHeldLocks(t *testing.T) {
	g, funcs := buildGraph(t, src)
	top := g.Lookup(funcs["top"])
	if top == nil {
		t.Fatal("no summary for top")
	}
	if len(top.Calls) != 1 || top.Calls[0].Callee.Name() != "mid" {
		t.Fatalf("top.Calls = %+v, want one call to mid", top.Calls)
	}
	if got := top.Calls[0].Held; len(got) != 1 || got[0] != "(p.S).mu" {
		t.Errorf("held at call to mid = %v, want [(p.S).mu]", got)
	}
}

func TestTransitiveAcquires(t *testing.T) {
	g, funcs := buildGraph(t, src)
	acq := g.TransitiveAcquires(funcs["top"])
	for _, class := range []string{"(p.S).mu", "p.other"} {
		if _, ok := acq[class]; !ok {
			t.Errorf("TransitiveAcquires(top) missing %q (got %v)", class, acq)
		}
	}
	if acqLeaf := g.TransitiveAcquires(funcs["leaf"]); len(acqLeaf) != 0 {
		t.Errorf("TransitiveAcquires(leaf) = %v, want empty", acqLeaf)
	}
}

func TestAtomicVsPlainFieldOps(t *testing.T) {
	g, funcs := buildGraph(t, src)
	leaf := g.Lookup(funcs["leaf"])
	if got := leaf.Atomic["(p.S).n"]; len(got) != 1 {
		t.Errorf("leaf atomic ops on (p.S).n = %d sites, want 1", len(got))
	}
	if got := leaf.Plain["(p.S).n"]; len(got) != 0 {
		t.Errorf("leaf plain ops on (p.S).n = %d sites, want 0 (claimed by the atomic call)", len(got))
	}
	reader := g.Lookup(funcs["plainReader"])
	if got := reader.Plain["(p.S).n"]; len(got) != 1 {
		t.Errorf("plainReader plain ops on (p.S).n = %d sites, want 1", len(got))
	}
	if got := reader.Plain["(p.S).hot"]; len(got) != 1 {
		t.Errorf("plainReader plain ops on (p.S).hot = %d sites, want 1", len(got))
	}
}

func TestRecursionDoesNotDiverge(t *testing.T) {
	g, funcs := buildGraph(t, `package p

import "sync"

var mu sync.Mutex

func a() { mu.Lock(); mu.Unlock(); b() }
func b() { a() }
`)
	acq := g.TransitiveAcquires(funcs["b"])
	if _, ok := acq["p.mu"]; !ok {
		t.Errorf("TransitiveAcquires(b) = %v, want to include p.mu through the cycle", acq)
	}
	if _, reaches := g.ReachesWait(funcs["a"]); reaches {
		t.Error("ReachesWait(a) = true, want false (no barrier in the cycle)")
	}
}
