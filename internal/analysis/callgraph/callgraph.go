// Package callgraph builds a package-local call graph with per-function
// summaries, giving analyzers cheap interprocedural answers without
// whole-program analysis: which locks a function may acquire
// (transitively), whether it can reach a barrier wait, and which struct
// fields it touches atomically versus plainly.
//
// The graph is deliberately scoped to one package — the same unit a vet
// pass sees — so summaries never dangle: an edge is recorded only when
// the callee's declaration is in the same package. Calls into other
// packages are treated as opaque, which keeps the analyses built on top
// (lockorder, atomicmix) under-approximate rather than noisy.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/cfg"
	"thriftybarrier/internal/analysis/lockset"
)

// Acquire records one lock acquisition inside a function: the lock's
// canonical class, the receiver text the source spells, and the classes
// already held at that point (union over paths; never includes the lock
// itself).
type Acquire struct {
	Class   string
	Display string
	Pos     token.Pos
	Held    []string // classes held when this lock is taken
}

// Call records one call to a function declared in the same package.
type Call struct {
	Callee      *types.Func
	Pos         token.Pos
	Held        []string // classes held at the call site
	HeldDisplay string   // source spelling of one held lock, for messages
}

// Wait records a direct thrifty.Barrier wait/park call.
type Wait struct {
	Pos    token.Pos
	Method string // Wait, WaitSite, WaitContext, WaitSiteContext
}

// Summary is the per-function digest the graph serves to analyzers.
type Summary struct {
	Fn       *types.Func
	Decl     *ast.FuncDecl
	Waits    []Wait
	Acquires []Acquire
	Calls    []Call
	// Atomic and Plain map a field's class ("(pkg.Type).field") to the
	// sites where it is accessed through sync/atomic functions versus
	// ordinary reads/writes. Function literals nested in the declaration
	// are included here (the access exists regardless of which goroutine
	// runs it) but excluded from the lock/wait tracking above.
	Atomic map[string][]token.Pos
	Plain  map[string][]token.Pos
}

// Graph holds every function summary of one package, in declaration
// order, with memoized transitive queries.
type Graph struct {
	Summaries []*Summary
	byFunc    map[*types.Func]*Summary

	reachMemo map[*types.Func][]string
	acqMemo   map[*types.Func]map[string]token.Pos
}

// Lookup returns the summary for fn, or nil if fn is not declared in the
// analyzed package.
func (g *Graph) Lookup(fn *types.Func) *Summary { return g.byFunc[fn] }

var waitMethods = map[string]bool{
	"Wait": true, "WaitSite": true, "WaitContext": true, "WaitSiteContext": true,
}

// Build constructs the graph for one package's files. Each declared
// function gets a CFG, a may-held lockset flow, and a summary extracted
// by replaying the flow block by block; dead blocks contribute nothing.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		byFunc:    map[*types.Func]*Summary{},
		reachMemo: map[*types.Func][]string{},
		acqMemo:   map[*types.Func]map[string]token.Pos{},
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := summarize(info, fn, fd)
			g.Summaries = append(g.Summaries, s)
			g.byFunc[fn] = s
		}
	}
	return g
}

func summarize(info *types.Info, fn *types.Func, fd *ast.FuncDecl) *Summary {
	s := &Summary{
		Fn:     fn,
		Decl:   fd,
		Atomic: map[string][]token.Pos{},
		Plain:  map[string][]token.Pos{},
	}

	graph := cfg.New(fd.Body)
	flow := lockset.Flow(info, graph)
	for _, b := range graph.Blocks {
		if !b.Live {
			continue
		}
		lockset.WalkBlock(info, b, flow.In[b], func(n ast.Node, held lockset.Set) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, method, ok := analysis.ReceiverOf(info, call); ok &&
				waitMethods[method] && analysis.IsNamed(recv, analysis.ThriftyPkg, "Barrier") {
				s.Waits = append(s.Waits, Wait{Pos: call.Pos(), Method: method})
				return true
			}
			if op, lock := lockset.Classify(info, call); op == lockset.Acquire {
				s.Acquires = append(s.Acquires, Acquire{
					Class:   lockset.Class(info, lock),
					Display: types.ExprString(lock),
					Pos:     call.Pos(),
					Held:    held.Classes(),
				})
				return true
			}
			if callee := calleeOf(info, call); callee != nil && callee.Pkg() == fn.Pkg() {
				s.Calls = append(s.Calls, Call{
					Callee:      callee,
					Pos:         call.Pos(),
					Held:        held.Classes(),
					HeldDisplay: held.Min(),
				})
			}
			return true
		})
	}

	collectFieldOps(info, fd, s)
	return s
}

// calleeOf resolves a call to the *types.Func it statically invokes
// (plain function, method, or qualified identifier); nil for builtins,
// conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// collectFieldOps records, over the whole declaration (function literals
// included), which struct fields are accessed through sync/atomic
// function calls and which through ordinary selectors. The address
// argument of an atomic call is claimed by the atomic side so the same
// node is not double-counted as a plain access.
func collectFieldOps(info *types.Info, fd *ast.FuncDecl, s *Summary) {
	claimed := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel := atomicAddrField(info, call); sel != nil {
			claimed[sel] = true
			if class, ok := fieldClass(info, sel); ok {
				s.Atomic[class] = append(s.Atomic[class], sel.Pos())
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || claimed[sel] {
			return true
		}
		if class, ok := fieldClass(info, sel); ok {
			s.Plain[class] = append(s.Plain[class], sel.Pos())
		}
		return true
	})
}

// atomicAddrField returns the field selector whose address is the first
// argument of a sync/atomic function call (atomic.AddUint64(&s.n, 1)
// returns the s.n node), or nil.
func atomicAddrField(info *types.Info, call *ast.CallExpr) *ast.SelectorExpr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // typed-atomic methods synchronize by construction
	}
	if len(call.Args) == 0 {
		return nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	field, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return field
}

// fieldClass resolves a selector to a named struct field's canonical
// class "(pkgpath.Type).field".
func fieldClass(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + selection.Obj().Name(), true
}

// ReachesWait reports whether fn can reach a thrifty.Barrier wait through
// package-local calls, returning the call chain as display names ending
// with the barrier method (e.g. ["flush", "drain", "(*thrifty.Barrier).Wait"]).
// Results are memoized; cycles are cut by treating in-progress functions
// as not reaching (a cycle with no wait inside never parks).
func (g *Graph) ReachesWait(fn *types.Func) ([]string, bool) {
	if trace, ok := g.reachMemo[fn]; ok {
		return trace, trace != nil
	}
	g.reachMemo[fn] = nil // cycle cut: in progress / negative
	s := g.byFunc[fn]
	if s == nil {
		return nil, false
	}
	if len(s.Waits) > 0 {
		trace := []string{"(*thrifty.Barrier)." + s.Waits[0].Method}
		g.reachMemo[fn] = trace
		return trace, true
	}
	for _, c := range s.Calls {
		if sub, ok := g.ReachesWait(c.Callee); ok {
			trace := append([]string{c.Callee.Name()}, sub...)
			g.reachMemo[fn] = trace
			return trace, true
		}
	}
	return nil, false
}

// TransitiveAcquires returns every lock class fn may acquire, directly
// or through package-local calls, with a representative position.
// Memoized; cycles are cut by returning the partial set computed so far.
func (g *Graph) TransitiveAcquires(fn *types.Func) map[string]token.Pos {
	if acq, ok := g.acqMemo[fn]; ok {
		return acq
	}
	acq := map[string]token.Pos{}
	g.acqMemo[fn] = acq // cycle cut: callees in the cycle see the partial map
	s := g.byFunc[fn]
	if s == nil {
		return acq
	}
	for _, a := range s.Acquires {
		if _, ok := acq[a.Class]; !ok {
			acq[a.Class] = a.Pos
		}
	}
	for _, c := range s.Calls {
		for class, pos := range g.TransitiveAcquires(c.Callee) {
			if _, ok := acq[class]; !ok {
				acq[class] = pos
			}
		}
	}
	return acq
}
