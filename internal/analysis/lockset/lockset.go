// Package lockset computes may-held mutex sets over the cfg package's
// control-flow graphs: a forward dataflow analysis whose fact at a
// program point is the set of locks that may be held there on some path
// from function entry.
//
// The join is set union — "may be held" is the sound direction for the
// deadlock checks built on top (lockedwait, lockorder): a barrier wait is
// dangerous if any path reaches it with a lock held, so merging branches
// keeps both branches' acquisitions. A deferred Unlock does not release
// during the scan (it runs at function exit, after every wait the
// function performs), matching the defer semantics the syntactic
// lockedwait encoded by hand.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/cfg"
)

// Lock records one acquisition: where it happened and the lock's
// canonical cross-function class (see Class).
type Lock struct {
	Pos   token.Pos
	Class string
}

// Set is a may-held lock set: receiver display text (types.ExprString of
// the lock expression) to its acquisition record. The display key
// intentionally matches the syntactic lockedwait's keying so `mu` and
// `s.mu` remain distinct locks and diagnostics print the same receiver
// the source spells.
type Set map[string]Lock

// with returns a copy of s with key added; Set values are treated as
// immutable by the dataflow engine, so transfer never mutates in place.
func (s Set) with(key string, l Lock) Set {
	if _, ok := s[key]; ok {
		return s
	}
	out := make(Set, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[key] = l
	return out
}

// without returns a copy of s with key removed.
func (s Set) without(key string) Set {
	if _, ok := s[key]; !ok {
		return s
	}
	out := make(Set, len(s))
	for k, v := range s {
		if k != key {
			out[k] = v
		}
	}
	return out
}

// Names returns the held lock display names in sorted order.
func (s Set) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Classes returns the canonical classes of the held locks, sorted and
// deduplicated.
func (s Set) Classes() []string {
	seen := map[string]bool{}
	var classes []string
	for _, l := range s {
		if !seen[l.Class] {
			seen[l.Class] = true
			classes = append(classes, l.Class)
		}
	}
	sort.Strings(classes)
	return classes
}

// Min returns the lexicographically smallest held name, or "".
func (s Set) Min() string {
	best := ""
	for k := range s {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// Lattice is the join-semilattice over Set: bottom is the empty set,
// join is union.
type Lattice struct{}

// Bottom returns the empty set (nil).
func (Lattice) Bottom() Set { return nil }

// Join unions two sets, preferring to return an input unchanged.
func (Lattice) Join(a, b Set) Set {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a
	for k, v := range b {
		out = out.with(k, v)
	}
	return out
}

// Equal reports whether two sets hold the same locks.
func (Lattice) Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// lockTypes are the lock implementations tracked by the analysis.
var lockTypes = []struct{ pkg, name string }{
	{"sync", "Mutex"},
	{"sync", "RWMutex"},
	{analysis.ThriftyPkg, "Mutex"},
}

func isLockType(t types.Type) bool {
	for _, lt := range lockTypes {
		if analysis.IsNamed(t, lt.pkg, lt.name) {
			return true
		}
	}
	return false
}

// Op classifies a call's effect on the lock set.
type Op int

// The classified lock operations.
const (
	NoOp    Op = iota
	Acquire    // Lock, RLock
	Release    // Unlock, RUnlock
)

// Classify resolves call to a lock operation on a tracked lock type,
// returning the receiver expression (the lock itself) when op != NoOp.
func Classify(info *types.Info, call *ast.CallExpr) (op Op, lock ast.Expr) {
	recv, method, ok := analysis.ReceiverOf(info, call)
	if !ok || !isLockType(recv) {
		return NoOp, nil
	}
	sel := call.Fun.(*ast.SelectorExpr)
	switch method {
	case "Lock", "RLock":
		return Acquire, sel.X
	case "Unlock", "RUnlock":
		return Release, sel.X
	}
	return NoOp, nil
}

// Class derives a canonical identity for a lock expression, stable
// across functions so interprocedural analyses can match acquisitions:
// a struct field becomes "(pkgpath.Type).field", a package-level var
// "pkgpath.var", and anything else (locals, complex expressions) falls
// back to the display text, which is only comparable within one
// function.
func Class(info *types.Info, lock ast.Expr) string {
	switch e := ast.Unparen(lock).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			obj := sel.Obj()
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + obj.Name()
			}
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return types.ExprString(lock)
}

// Transfer applies one CFG node's lock effects to held: every Lock/RLock
// on a tracked type adds the receiver, every immediate Unlock/RUnlock
// removes it. Calls inside DeferStmt subtrees are skipped (a deferred
// Unlock releases at function exit, not here) and FuncLit bodies are
// skipped (they run on other goroutines' stacks with their own graphs).
func Transfer(info *types.Info, n ast.Node, held Set) Set {
	ast.Inspect(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch op, lock := Classify(info, sub); op {
			case Acquire:
				held = held.with(types.ExprString(lock), Lock{Pos: lock.Pos(), Class: Class(info, lock)})
			case Release:
				held = held.without(types.ExprString(lock))
			}
		}
		return true
	})
	return held
}

// Flow runs the forward may-held analysis over g. Result.In[b] is the
// set held at b's entry; use WalkBlock to replay within a block.
func Flow(info *types.Info, g *cfg.Graph) cfg.Result[Set] {
	return cfg.Forward[Set](g, Lattice{}, nil, func(b *cfg.Block, in Set) Set {
		for _, n := range b.Nodes {
			in = Transfer(info, n, in)
		}
		return in
	})
}

// WalkBlock replays b's nodes from the entry fact in, invoking visit for
// every AST node in source order with the lock set held at that node
// (before the node's own effect applies — a Lock call sees the set
// without itself; a Wait call sees exactly what is held around it).
// visit returning false prunes that subtree, lock effects included.
// Defer and function-literal subtrees are neither visited nor applied,
// matching Transfer. The returned set is the fact at block exit.
func WalkBlock(info *types.Info, b *cfg.Block, in Set, visit func(n ast.Node, held Set) bool) Set {
	for _, n := range b.Nodes {
		in = walk(info, n, in, visit)
	}
	return in
}

func walk(info *types.Info, n ast.Node, held Set, visit func(n ast.Node, held Set) bool) Set {
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return true
		}
		switch sub.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		if !visit(sub, held) {
			return false
		}
		if call, ok := sub.(*ast.CallExpr); ok {
			switch op, lock := Classify(info, call); op {
			case Acquire:
				held = held.with(types.ExprString(lock), Lock{Pos: lock.Pos(), Class: Class(info, lock)})
			case Release:
				held = held.without(types.ExprString(lock))
			}
		}
		return true
	})
	return held
}
