package lockset

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"thriftybarrier/internal/analysis/cfg"
)

// checkFunc type-checks src (a full package) and returns the body and
// info of function f plus the file set.
func checkFunc(t *testing.T, src string) (*types.Info, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return info, fd.Body
		}
	}
	t.Fatal("no function f in source")
	return nil, nil
}

// heldAtSink runs the flow and returns the held display names at the
// sink() call.
func heldAtSink(t *testing.T, src string) []string {
	t.Helper()
	info, body := checkFunc(t, src)
	g := cfg.New(body)
	flow := Flow(info, g)
	var names []string
	found := false
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		WalkBlock(info, b, flow.In[b], func(n ast.Node, held Set) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
					names = held.Names()
					found = true
				}
			}
			return true
		})
	}
	if !found {
		t.Fatal("no sink() call reached by the walk")
	}
	return names
}

const prelude = `package p

import "sync"

var mu sync.Mutex
var c bool

func sink() {}
`

func TestBranchReleaseMayHold(t *testing.T) {
	// One branch unlocks, the other does not: may-held keeps the lock.
	got := heldAtSink(t, prelude+`
func f() {
	mu.Lock()
	if c {
		mu.Unlock()
	}
	sink()
}
`)
	if len(got) != 1 || got[0] != "mu" {
		t.Errorf("held at sink = %v, want [mu]", got)
	}
}

func TestBothBranchesRelease(t *testing.T) {
	got := heldAtSink(t, prelude+`
func f() {
	mu.Lock()
	if c {
		mu.Unlock()
	} else {
		mu.Unlock()
	}
	sink()
}
`)
	if len(got) != 0 {
		t.Errorf("held at sink = %v, want empty", got)
	}
}

func TestGotoSkipsLock(t *testing.T) {
	// The Lock is unreachable: a dead block must not poison the label's
	// join point.
	got := heldAtSink(t, prelude+`
func f() {
	goto done
	mu.Lock()
done:
	sink()
}
`)
	if len(got) != 0 {
		t.Errorf("held at sink = %v, want empty (lock is dead code)", got)
	}
}

func TestDeferredUnlockStaysHeld(t *testing.T) {
	got := heldAtSink(t, prelude+`
func f() {
	mu.Lock()
	defer mu.Unlock()
	sink()
}
`)
	if len(got) != 1 || got[0] != "mu" {
		t.Errorf("held at sink = %v, want [mu] (deferred unlock runs at exit)", got)
	}
}

func TestLoopCarriedLock(t *testing.T) {
	// Lock taken on iteration n is still held when iteration n+1's sink
	// runs: the back edge must carry the fact around.
	got := heldAtSink(t, prelude+`
func f() {
	for c {
		sink()
		mu.Lock()
	}
}
`)
	if len(got) != 1 || got[0] != "mu" {
		t.Errorf("held at sink = %v, want [mu] via the loop back edge", got)
	}
}

func TestClass(t *testing.T) {
	src := prelude + `
type T struct{ m sync.Mutex }

func f() {
	var local sync.Mutex
	var tv T
	local.Lock()
	tv.m.Lock()
	mu.Lock()
	sink()
}
`
	info, body := checkFunc(t, src)
	classes := map[string]string{} // display -> class
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, lock := Classify(info, call); op == Acquire {
				classes[types.ExprString(lock)] = Class(info, lock)
			}
		}
		return true
	})
	want := map[string]string{
		"local": "local",   // locals fall back to display text
		"tv.m":  "(p.T).m", // struct field: canonical cross-function key
		"mu":    "p.mu",    // package-level var: qualified name
	}
	for display, class := range want {
		if classes[display] != class {
			t.Errorf("Class(%s) = %q, want %q", display, classes[display], class)
		}
	}
	if !strings.HasPrefix(want["tv.m"], "(") {
		t.Fatal("sanity")
	}
}
