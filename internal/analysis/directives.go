package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives, in the staticcheck style:
//
//	//lint:ignore analyzer1[,analyzer2] reason
//	//lint:file-ignore analyzer1[,analyzer2] reason
//
// An ignore directive suppresses the listed analyzers' diagnostics on the
// directive's own line and on the line immediately below it (so it can sit
// either at the end of the offending line or on its own line above). A
// file-ignore directive, anywhere in a file, suppresses the listed
// analyzers for the whole file. The analyzer list may be "*" to suppress
// every analyzer. A reason is mandatory; a directive without one is
// ignored (and the diagnostic stays).

// suppressor answers "is this diagnostic suppressed?" for one package.
type suppressor struct {
	fset *token.FileSet
	// line directives: filename -> line -> analyzer names ("*" wildcards).
	lines map[string]map[int][]string
	// file directives: filename -> analyzer names.
	files map[string][]string
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{fset: fset, lines: map[string]map[int][]string{}, files: map[string][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					text = strings.TrimPrefix(text, "lint:ignore ")
				case strings.HasPrefix(text, "lint:file-ignore "):
					text = strings.TrimPrefix(text, "lint:file-ignore ")
					fileWide = true
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is ineffective
				}
				names := strings.Split(fields[0], ",")
				pos := s.fset.Position(c.Pos())
				if fileWide {
					s.files[pos.Filename] = append(s.files[pos.Filename], names...)
					continue
				}
				m := s.lines[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return s
}

func matches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}

// suppressed reports whether analyzer's diagnostic at pos is covered by a
// directive.
func (s *suppressor) suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	if matches(s.files[p.Filename], analyzer) {
		return true
	}
	if m := s.lines[p.Filename]; m != nil && matches(m[p.Line], analyzer) {
		return true
	}
	return false
}
