package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives, in the staticcheck style:
//
//	//lint:ignore analyzer1[,analyzer2] reason
//	//lint:file-ignore analyzer1[,analyzer2] reason
//
// An ignore directive suppresses the listed analyzers' diagnostics on the
// directive's own line and on the line immediately below it (so it can sit
// either at the end of the offending line or on its own line above). A
// file-ignore directive, anywhere in a file, suppresses the listed
// analyzers for the whole file. The analyzer list may be "*" to suppress
// every analyzer. A reason is mandatory; a directive without one is
// ignored (the diagnostic stays) and surfaces as malformed in the
// -ignores audit.

// Directive is one parsed //lint:ignore or //lint:file-ignore comment,
// with a use counter so the -ignores audit can detect stale suppressions
// that no longer match any diagnostic.
type Directive struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	FileWide  bool
	// Uses counts the diagnostics this directive suppressed in the run.
	// A well-formed directive with zero uses is stale: the finding it
	// once silenced is gone, and the directive should go with it.
	Uses int
	// Malformed marks a directive with no reason; it suppresses nothing.
	Malformed bool
}

// suppressor answers "is this diagnostic suppressed?" for one package,
// counting uses per directive.
type suppressor struct {
	fset *token.FileSet
	// directives in source order, shared with the index maps below.
	directives []*Directive
	// line index: filename -> line -> directives covering that line.
	lines map[string]map[int][]*Directive
	// file index: filename -> file-wide directives.
	files map[string][]*Directive
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{fset: fset, lines: map[string]map[int][]*Directive{}, files: map[string][]*Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					text = strings.TrimPrefix(text, "lint:ignore ")
				case strings.HasPrefix(text, "lint:file-ignore "):
					text = strings.TrimPrefix(text, "lint:file-ignore ")
					fileWide = true
				default:
					continue
				}
				pos := s.fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue // not even an analyzer list: plain noise
				}
				d := &Directive{
					Pos:       pos,
					Analyzers: strings.Split(fields[0], ","),
					FileWide:  fileWide,
					Malformed: len(fields) < 2,
				}
				if !d.Malformed {
					d.Reason = strings.TrimSpace(strings.TrimPrefix(text, fields[0]))
				}
				s.directives = append(s.directives, d)
				if d.Malformed {
					continue // recorded for the audit, but never suppresses
				}
				if fileWide {
					s.files[pos.Filename] = append(s.files[pos.Filename], d)
					continue
				}
				m := s.lines[pos.Filename]
				if m == nil {
					m = map[int][]*Directive{}
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
				m[pos.Line+1] = append(m[pos.Line+1], d)
			}
		}
	}
	return s
}

func matches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}

// suppressed reports whether analyzer's diagnostic at pos is covered by a
// directive. Every covering directive is counted as used (two directives
// over one diagnostic are both live), and the first one's reason is
// returned for reporting.
func (s *suppressor) suppressed(analyzer string, pos token.Pos) (reason string, ok bool) {
	p := s.fset.Position(pos)
	hit := func(d *Directive) {
		d.Uses++
		if !ok {
			reason, ok = d.Reason, true
		}
	}
	for _, d := range s.files[p.Filename] {
		if matches(d.Analyzers, analyzer) {
			hit(d)
		}
	}
	if m := s.lines[p.Filename]; m != nil {
		for _, d := range m[p.Line] {
			if matches(d.Analyzers, analyzer) {
				hit(d)
			}
		}
	}
	return reason, ok
}
