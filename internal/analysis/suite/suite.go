// Package suite enumerates the thriftyvet analyzers in their canonical
// order. cmd/thriftyvet and the end-to-end tests share this registry so
// the binary and the test suite can never disagree about what runs.
package suite

import (
	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/barriercopy"
	"thriftybarrier/internal/analysis/brokenreset"
	"thriftybarrier/internal/analysis/lockedwait"
	"thriftybarrier/internal/analysis/sleeptable"
	"thriftybarrier/internal/analysis/waitparties"
	"thriftybarrier/internal/analysis/waketimer"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		barriercopy.Analyzer,
		brokenreset.Analyzer,
		lockedwait.Analyzer,
		sleeptable.Analyzer,
		waitparties.Analyzer,
		waketimer.Analyzer,
	}
}
