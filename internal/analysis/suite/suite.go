// Package suite enumerates the thriftyvet analyzers in their canonical
// order. cmd/thriftyvet and the end-to-end tests share this registry so
// the binary and the test suite can never disagree about what runs.
package suite

import (
	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/atomicmix"
	"thriftybarrier/internal/analysis/barriercopy"
	"thriftybarrier/internal/analysis/brokenreset"
	"thriftybarrier/internal/analysis/framepair"
	"thriftybarrier/internal/analysis/lockedwait"
	"thriftybarrier/internal/analysis/lockorder"
	"thriftybarrier/internal/analysis/sleeptable"
	"thriftybarrier/internal/analysis/waitparties"
	"thriftybarrier/internal/analysis/waketimer"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		barriercopy.Analyzer,
		brokenreset.Analyzer,
		framepair.Analyzer,
		lockedwait.Analyzer,
		lockorder.Analyzer,
		sleeptable.Analyzer,
		waitparties.Analyzer,
		waketimer.Analyzer,
	}
}
