// Package locks extends the thrifty barrier's energy-aware waiting to lock
// synchronization — the second future-work direction named in the paper's
// conclusion ("and to other synchronization constructs, such as locks").
//
// The modeled primitive is an MCS-style queue lock on the simulated
// machine: each waiter spins on its own queue node, and the predecessor's
// release writes that node — a precise, per-waiter invalidation that plays
// the role the barrier-flag invalidation plays for barriers (the external
// wake-up). A thrifty waiter predicts its wait as
//
//	queue position x predicted lock service time,
//
// where the service time (hold + handoff) is learned with the same
// last-value table the barrier uses for BIT. If the prediction covers a
// sleep state's round trip, the CPU sleeps with hybrid wake-up.
//
// Locks differ from barriers in one crucial way, which this package's
// experiments quantify: a sleeping waiter that becomes the next lock
// holder puts its exit transition on the lock's critical path, delaying
// every thread behind it (a convoy). The thrifty lock therefore only
// sleeps when it is deep enough in the queue (MinQueueDepth) that the
// internal timer can anticipate the handoff, and the overprediction
// cut-off disables prediction when service times turn erratic.
package locks

import (
	"fmt"

	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// Config describes the contended-lock experiment.
type Config struct {
	// Threads contend for one lock, each on its own CPU.
	Threads int
	// OpsPerThread is how many critical sections each thread executes.
	OpsPerThread int
	// MeanThink is the mean exponential think time between sections.
	MeanThink sim.Cycles
	// MeanHold is the mean critical-section length.
	MeanHold sim.Cycles
	// HoldJitter is the multiplicative spread of hold times (log-normal
	// sigma).
	HoldJitter float64
	// Handoff is the lock transfer latency (queue-node invalidation +
	// reload between two nodes).
	Handoff sim.Cycles
	// Seed drives the random streams.
	Seed uint64
}

// DefaultConfig is a 16-thread, heavily contended lock.
func DefaultConfig() Config {
	return Config{
		Threads:      16,
		OpsPerThread: 60,
		MeanThink:    40 * sim.Microsecond,
		MeanHold:     25 * sim.Microsecond,
		HoldJitter:   0.2,
		Handoff:      300 * sim.Nanosecond,
		Seed:         1,
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.Threads <= 0 || c.Threads > 64 {
		return fmt.Errorf("locks: thread count %d out of (0,64]", c.Threads)
	}
	if c.OpsPerThread <= 0 {
		return fmt.Errorf("locks: non-positive ops %d", c.OpsPerThread)
	}
	if c.MeanThink < 0 || c.MeanHold <= 0 || c.Handoff < 0 {
		return fmt.Errorf("locks: invalid timing in %+v", c)
	}
	if c.HoldJitter < 0 {
		return fmt.Errorf("locks: negative jitter")
	}
	return nil
}

// Options selects the waiting strategy.
type Options struct {
	Name string
	// States is the sleep catalogue; empty = always spin (the baseline
	// MCS lock).
	States []power.SleepState
	// Oracle uses the true wait (bound).
	Oracle bool
	// Cutoff is the overprediction threshold (fraction of predicted wait).
	Cutoff float64
	// MinQueueDepth is the smallest queue position allowed to sleep; 1
	// lets even the immediate successor sleep (exposing the convoy),
	// higher values keep the head of the queue hot.
	MinQueueDepth int
	// WakeMargin is the fraction of the predicted wait by which the
	// internal timer anticipates the handoff. Locks are asymmetric: waking
	// late stalls the lock itself (every sleeper is a future holder), while
	// waking early merely costs residual spin — so the timer aims well
	// before the predicted handoff, and a waiter that finds itself still
	// deep in the queue goes back to sleep (the re-assessment the paper
	// skips for barriers, §3.3.1, which pays off for locks).
	WakeMargin float64
	// ReSleepDepth is the queue depth at or beyond which an early-woken
	// waiter re-enters sleep instead of residual-spinning. Zero disables
	// re-sleeping.
	ReSleepDepth int
	// Naive applies the barrier policy verbatim: plain best-fit state
	// selection, timer aimed exactly at the predicted handoff, no pre-wake
	// hint. It exposes why locks need the refinements (the convoy).
	Naive bool
	// Predictor configures the service-time table.
	Predictor predict.Config
}

// SpinLock is the conventional MCS lock: all waiters spin.
func SpinLock() Options {
	return Options{Name: "Spin-MCS", Predictor: predict.DefaultConfig()}
}

// ThriftyLock predicts waits and sleeps deep in the queue.
func ThriftyLock() Options {
	return Options{
		Name:          "Thrifty-MCS",
		States:        power.Table3(),
		Cutoff:        0.50,
		MinQueueDepth: 2,
		WakeMargin:    0.35,
		ReSleepDepth:  4,
		Predictor:     predict.DefaultConfig(),
	}
}

// NaiveLock ports the barrier policy to the lock without the
// lock-specific refinements: plain best-fit selection, no anticipation
// margin, no re-sleep, no pre-wake. Every time its prediction runs long,
// the exit transition lands on the lock's critical path — the convoy this
// package's refinements exist to prevent.
func NaiveLock() Options {
	o := ThriftyLock()
	o.Name = "Naive-MCS"
	o.MinQueueDepth = 1
	o.WakeMargin = 0
	o.ReSleepDepth = 0
	o.Naive = true
	return o
}

// OracleLock sleeps with perfect wait knowledge.
func OracleLock() Options {
	o := ThriftyLock()
	o.Name = "Oracle-MCS"
	o.Oracle = true
	return o
}

// Stats counts lock-mechanism events.
type Stats struct {
	Acquires      int
	Sleeps        map[string]int
	Spins         int
	EarlyWakes    int
	ExternalWakes int
	LateWakes     int
	ReSleeps      int
	PreWakes      int
	Disables      int
	// LockIdle is time the lock sat free because its next holder was still
	// waking up — the convoy cost unique to locks.
	LockIdle sim.Cycles
}

// Result is one run's measurement.
type Result struct {
	Breakdown energy.Breakdown
	Span      sim.Cycles
	Stats     Stats
}

// lockSiteKey indexes the service-time predictor (a single static lock
// site in this experiment).
const lockSiteKey = 0x10

// waiter is one queued thread.
type waiter struct {
	thread   int
	enqueued sim.Cycles
	ready    sim.Cycles // when the thread can take the lock if offered
	sleeping bool
	state    power.SleepState
	sleepAt  sim.Cycles
	timer    sim.Handle
	woken    bool
	predWait sim.Cycles
}

// Machine runs the experiment.
type Machine struct {
	cfg    Config
	opts   Options
	engine *sim.Engine
	model  *power.Model
	table  *predict.Table
	rng    *sim.RNG

	tl     []*sim.Timeline
	ops    []int
	finish []sim.Cycles

	held      bool
	holder    int
	holdStart sim.Cycles
	queue     []*waiter
	lastSvc   sim.Cycles

	stats Stats
}

// NewMachine assembles the experiment.
func NewMachine(cfg Config, opts Options) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var model *power.Model
	if len(opts.States) > 0 {
		model = power.NewModel(power.DefaultUnitEnergies(), opts.States)
	} else {
		model = power.NewModel(power.DefaultUnitEnergies(), power.Table3())
	}
	m := &Machine{
		cfg:    cfg,
		opts:   opts,
		engine: sim.NewEngine(),
		model:  model,
		table:  predict.NewTable(opts.Predictor),
		rng:    sim.NewRNG(cfg.Seed),
		tl:     make([]*sim.Timeline, cfg.Threads),
		ops:    make([]int, cfg.Threads),
		finish: make([]sim.Cycles, cfg.Threads),
	}
	for i := range m.tl {
		m.tl[i] = &sim.Timeline{}
	}
	m.stats.Sleeps = make(map[string]int)
	return m
}

// Run executes the experiment to completion.
func (m *Machine) Run() Result {
	for t := 0; t < m.cfg.Threads; t++ {
		t := t
		m.engine.At(0, func() { m.think(t, 0) })
	}
	m.engine.Run()
	var span sim.Cycles
	for _, f := range m.finish {
		if f > span {
			span = f
		}
	}
	return Result{Breakdown: energy.Collect(m.tl, span), Span: span, Stats: m.stats}
}

// think runs the non-critical section, then tries to acquire.
func (m *Machine) think(t int, now sim.Cycles) {
	if m.ops[t] >= m.cfg.OpsPerThread {
		m.finish[t] = now
		return
	}
	d := sim.Cycles(float64(m.cfg.MeanThink) * m.rng.Split(uint64(t)+100).ExpFloat64())
	if d <= 0 {
		d = 1
	}
	m.tl[t].AddInterval(sim.StateCompute, d, m.model.ComputePower())
	at := now + d
	m.engine.At(at, func() { m.enqueue(t, at) })
}

// enqueue joins the lock queue (or acquires immediately if free).
func (m *Machine) enqueue(t int, now sim.Cycles) {
	if !m.held && len(m.queue) == 0 {
		m.acquire(t, now)
		return
	}
	w := &waiter{thread: t, enqueued: now, ready: now}
	m.queue = append(m.queue, w)
	position := len(m.queue) // holder not counted; position 1 = next

	if len(m.opts.States) == 0 || m.opts.Oracle {
		// Spinners (and oracle waiters, resolved at handoff) just wait;
		// spin time is charged at handoff.
		if !m.opts.Oracle {
			m.stats.Spins++
		}
		return
	}
	if position < m.opts.MinQueueDepth {
		m.stats.Spins++
		return
	}
	if !m.table.Enabled(lockSiteKey, t) {
		m.stats.Spins++
		return
	}
	svc, ok := m.table.Predict(lockSiteKey)
	if !ok {
		m.stats.Spins++
		return
	}
	predWait := sim.Cycles(position) * svc
	st, ok := m.fitLock(predWait)
	if !ok {
		m.stats.Spins++
		return
	}
	w.predWait = predWait
	m.sleep(w, now, predWait, st)
}

// fitLock scans for the deepest state whose round trip fits inside the
// anticipated portion of the wait AND whose exit transition fits inside
// the anticipation window — the lock-specific refinement of the paper's
// best-fit scan: a state that cannot wake inside the margin would land its
// exit on the lock's critical path whenever the prediction runs long.
func (m *Machine) fitLock(predWait sim.Cycles) (power.SleepState, bool) {
	if m.opts.Naive {
		fit := m.model.BestFit(predWait, 0)
		return fit.State, fit.OK
	}
	window := sim.Cycles(float64(predWait) * m.opts.WakeMargin)
	usable := sim.Cycles(float64(predWait) * (1 - m.opts.WakeMargin))
	var best power.SleepState
	ok := false
	for _, st := range m.model.States() {
		if 2*st.Transition <= usable && st.Transition <= window {
			best = st
			ok = true
		}
	}
	return best, ok
}

// sleep puts the waiter's CPU into st with the anticipatory internal
// timer armed.
func (m *Machine) sleep(w *waiter, now, predWait sim.Cycles, st power.SleepState) {
	w.sleeping = true
	w.woken = false
	w.state = st
	m.tl[w.thread].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
	w.sleepAt = now + st.Transition
	m.stats.Sleeps[st.Name]++
	anticipated := sim.Cycles(float64(predWait) * (1 - m.opts.WakeMargin))
	wake := now + anticipated - st.Transition
	if wake < w.sleepAt {
		wake = w.sleepAt
	}
	w.timer = m.engine.At(wake, func() { m.timerWake(w, wake) })
}

// position reports w's 1-based queue position, or 0 if dequeued.
func (m *Machine) position(w *waiter) int {
	for i, q := range m.queue {
		if q == w {
			return i + 1
		}
	}
	return 0
}

// timerWake is the internal wake-up: the waiter transitions out and
// either residual-spins (near the head) or re-enters sleep (still deep).
func (m *Machine) timerWake(w *waiter, now sim.Cycles) {
	if w.woken {
		return
	}
	w.woken = true
	w.timer = sim.Handle{}
	t := w.thread
	if now > w.sleepAt {
		m.tl[t].AddInterval(sim.StateSleep, now-w.sleepAt, m.model.SleepPower(w.state))
	}
	m.tl[t].AddInterval(sim.StateTransition, w.state.Transition, m.model.TransitionPower(w.state))
	up := now + w.state.Transition
	w.ready = up
	w.sleeping = false
	m.stats.EarlyWakes++

	// Re-assessment: if the queue ahead is still long, sleeping again
	// beats residual-spinning the whole remainder.
	if m.opts.ReSleepDepth > 0 {
		if pos := m.position(w); pos >= m.opts.ReSleepDepth {
			if svc, ok := m.table.Predict(lockSiteKey); ok && m.table.Enabled(lockSiteKey, t) {
				remaining := sim.Cycles(pos) * svc
				if st, fits := m.fitLock(remaining); fits {
					m.stats.ReSleeps++
					w.enqueued = up // re-base the cut-off window
					w.predWait = remaining
					m.sleep(w, up, remaining, st)
					return
				}
			}
		}
	}
}

// acquire takes the lock and schedules the release. Taking the lock also
// pre-wakes the next queued sleeper, so its exit transition overlaps the
// critical section instead of landing on the handoff path — the
// lock-specific analogue of the internal timer anticipating the barrier
// release.
func (m *Machine) acquire(t int, now sim.Cycles) {
	m.held = true
	m.holder = t
	m.holdStart = now
	m.stats.Acquires++
	if len(m.queue) > 0 && !m.opts.Naive {
		if next := m.queue[0]; next.sleeping && !next.woken {
			sig := now + m.cfg.Handoff
			m.engine.At(sig, func() { m.preWake(next, sig) })
		}
	}
	jitter := m.rng.Split(uint64(t)+500).LogNormal(0, m.cfg.HoldJitter)
	hold := sim.Cycles(float64(m.cfg.MeanHold) * jitter)
	if hold <= 0 {
		hold = 1
	}
	m.tl[t].AddInterval(sim.StateCompute, hold, m.model.ComputePower())
	at := now + hold
	m.engine.At(at, func() { m.release(t, at) })
}

// release hands the lock to the next waiter.
func (m *Machine) release(t int, now sim.Cycles) {
	m.held = false
	// Learn the lock service time (hold + handoff): the analogue of the
	// last thread updating the shared BIT.
	svc := now - m.holdStart + m.cfg.Handoff
	m.lastSvc = svc
	if len(m.opts.States) > 0 && !m.opts.Oracle {
		m.table.Update(lockSiteKey, svc)
	}
	m.ops[t]++
	m.think(t, now)

	if len(m.queue) == 0 {
		return
	}
	w := m.queue[0]
	m.queue = m.queue[1:]
	signal := now + m.cfg.Handoff // the qnode write reaches the successor

	switch {
	case m.opts.Oracle:
		m.resolveOracle(w, signal)
	case w.sleeping && !w.woken:
		// External wake-up: the queue-node invalidation; exit transition
		// lands on the lock's critical path.
		w.woken = true
		m.engine.Cancel(w.timer)
		w.timer = sim.Handle{}
		sig := signal
		if sig < w.sleepAt {
			sig = w.sleepAt
		}
		if sig > w.sleepAt {
			m.tl[w.thread].AddInterval(sim.StateSleep, sig-w.sleepAt, m.model.SleepPower(w.state))
		}
		m.tl[w.thread].AddInterval(sim.StateTransition, w.state.Transition, m.model.TransitionPower(w.state))
		up := sig + w.state.Transition
		m.stats.ExternalWakes++
		m.stats.LateWakes++
		m.stats.LockIdle += up - signal
		m.checkCutoff(w, up)
		m.engine.At(up, func() { m.acquire(w.thread, up) })
	default:
		// Spinner (or residual spinner after an early internal wake): it
		// notices the handoff as soon as both the signal has arrived and
		// it is executing.
		start := signal
		if w.ready > start {
			m.stats.LockIdle += w.ready - start
			start = w.ready
		}
		if start > w.ready {
			m.tl[w.thread].AddInterval(sim.StateSpin, start-w.ready, m.model.SpinPower())
		}
		if w.predWait > 0 {
			// An early-woken sleeper learns its miss only at the handoff.
			m.checkCutoff(w, start)
		}
		m.engine.At(start, func() { m.acquire(w.thread, start) })
	}
}

// preWake is the "you're next" hint written by the new lock holder: the
// sleeper transitions out during the holder's critical section and
// residual-spins for the actual handoff.
func (m *Machine) preWake(w *waiter, now sim.Cycles) {
	if w.woken || !w.sleeping {
		return
	}
	w.woken = true
	m.engine.Cancel(w.timer)
	w.timer = sim.Handle{}
	at := now
	if at < w.sleepAt {
		at = w.sleepAt
	}
	if at > w.sleepAt {
		m.tl[w.thread].AddInterval(sim.StateSleep, at-w.sleepAt, m.model.SleepPower(w.state))
	}
	m.tl[w.thread].AddInterval(sim.StateTransition, w.state.Transition, m.model.TransitionPower(w.state))
	w.ready = at + w.state.Transition
	w.sleeping = false
	m.stats.PreWakes++
}

// resolveOracle settles a perfectly predicted waiter: it sleeps exactly
// when worthwhile and is executing again precisely at the handoff.
func (m *Machine) resolveOracle(w *waiter, signal sim.Cycles) {
	stall := signal - w.enqueued
	fit := m.model.BestFit(stall, 0)
	t := w.thread
	if fit.OK {
		st := fit.State
		m.tl[t].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
		m.tl[t].AddInterval(sim.StateSleep, stall-2*st.Transition, m.model.SleepPower(st))
		m.tl[t].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
		m.stats.Sleeps[st.Name]++
	} else if stall > 0 {
		m.tl[t].AddInterval(sim.StateSpin, stall, m.model.SpinPower())
		m.stats.Spins++
	}
	m.engine.At(signal, func() { m.acquire(t, signal) })
}

// checkCutoff disables the thread's use of prediction when it woke LATE
// by more than the threshold. Late wakes are the ones that stall the lock
// (a future holder is still transitioning out); early wakes merely spin
// and are already bounded by the wake margin.
func (m *Machine) checkCutoff(w *waiter, ready sim.Cycles) {
	if m.opts.Cutoff <= 0 || w.predWait <= 0 {
		return
	}
	late := ready - (w.enqueued + w.predWait)
	if float64(late) > m.opts.Cutoff*float64(w.predWait) {
		m.table.Disable(lockSiteKey, w.thread)
		m.stats.Disables++
	}
}
