package locks

import (
	"math"
	"testing"

	"thriftybarrier/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Threads: 0, OpsPerThread: 1, MeanHold: 1},
		{Threads: 65, OpsPerThread: 1, MeanHold: 1},
		{Threads: 2, OpsPerThread: 0, MeanHold: 1},
		{Threads: 2, OpsPerThread: 1, MeanHold: 0},
		{Threads: 2, OpsPerThread: 1, MeanHold: 1, HoldJitter: -1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestMutualExclusionOpsComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.OpsPerThread = 25
	for _, opts := range []Options{SpinLock(), ThriftyLock(), NaiveLock(), OracleLock()} {
		m := NewMachine(cfg, opts)
		res := m.Run()
		want := cfg.Threads * cfg.OpsPerThread
		if res.Stats.Acquires != want {
			t.Errorf("%s: acquires = %d, want %d", opts.Name, res.Stats.Acquires, want)
		}
		if res.Span <= 0 {
			t.Errorf("%s: zero span", opts.Name)
		}
	}
}

func TestSpinLockNeverSleeps(t *testing.T) {
	res := NewMachine(DefaultConfig(), SpinLock()).Run()
	if len(res.Stats.Sleeps) != 0 {
		t.Fatalf("spin lock slept: %v", res.Stats.Sleeps)
	}
	if res.Breakdown.Time[sim.StateSpin] <= 0 {
		t.Fatal("contended spin lock never spun")
	}
}

func TestThriftyLockSavesEnergyUnderContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 24
	cfg.MeanThink = 20 * sim.Microsecond
	cfg.MeanHold = 30 * sim.Microsecond
	base := NewMachine(cfg, SpinLock()).Run()
	thr := NewMachine(cfg, ThriftyLock()).Run()
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 0.60 {
		t.Fatalf("thrifty lock energy = %.3f, want deep savings under saturation", n.TotalEnergy())
	}
	// Under full saturation every handoff is critical-path, so some cost
	// is inherent (Sleep3's exit exceeds the mean hold); it must stay
	// within ~10%.
	if n.SpanRatio > 1.10 {
		t.Fatalf("thrifty lock slowdown = %.4f", n.SpanRatio)
	}
	total := 0
	for _, c := range thr.Stats.Sleeps {
		total += c
	}
	if total == 0 {
		t.Fatal("thrifty lock never slept")
	}
}

func TestThriftyLockCheapAtModerateContention(t *testing.T) {
	// With think time >> hold time the queue is short and sleepy waiters
	// are pre-woken well before their turn: throughput cost disappears
	// while waits that do occur still save energy.
	cfg := DefaultConfig()
	cfg.Threads = 12
	cfg.MeanThink = 300 * sim.Microsecond
	cfg.MeanHold = 20 * sim.Microsecond
	base := NewMachine(cfg, SpinLock()).Run()
	thr := NewMachine(cfg, ThriftyLock()).Run()
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.SpanRatio > 1.02 {
		t.Fatalf("moderate-contention slowdown = %.4f, want <= 2%%", n.SpanRatio)
	}
	if n.TotalEnergy() > 1.001 {
		t.Fatalf("moderate-contention energy = %.4f, want <= baseline", n.TotalEnergy())
	}
}

func TestNaiveLockConvoys(t *testing.T) {
	// The barrier policy ported verbatim (no margin, no pre-wake, no
	// graded fit) lands exit transitions on the lock's critical path: it
	// must lose more time than the refined thrifty lock.
	cfg := DefaultConfig()
	cfg.Threads = 24
	cfg.MeanThink = 20 * sim.Microsecond
	cfg.MeanHold = 30 * sim.Microsecond
	base := NewMachine(cfg, SpinLock()).Run()
	thr := NewMachine(cfg, ThriftyLock()).Run()
	naive := NewMachine(cfg, NaiveLock()).Run()
	slowThr := float64(thr.Span) / float64(base.Span)
	slowNaive := float64(naive.Span) / float64(base.Span)
	if slowNaive <= slowThr {
		t.Fatalf("naive slowdown %.4f <= thrifty %.4f", slowNaive, slowThr)
	}
	if naive.Stats.LockIdle <= thr.Stats.LockIdle {
		t.Fatalf("naive idle %v <= thrifty idle %v", naive.Stats.LockIdle, thr.Stats.LockIdle)
	}
}

func TestOracleLockIsBound(t *testing.T) {
	cfg := DefaultConfig()
	base := NewMachine(cfg, SpinLock()).Run()
	thr := NewMachine(cfg, ThriftyLock()).Run()
	ora := NewMachine(cfg, OracleLock()).Run()
	eT := thr.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	eO := ora.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	if eO > eT+1e-9 {
		t.Fatalf("oracle energy %.4f above thrifty %.4f", eO, eT)
	}
	if ora.Stats.LockIdle != 0 {
		t.Fatalf("oracle lock idle %v, want 0", ora.Stats.LockIdle)
	}
}

func TestUncontendedLockActsLikeCompute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 1
	cfg.OpsPerThread = 50
	res := NewMachine(cfg, ThriftyLock()).Run()
	if res.Breakdown.Time[sim.StateSpin] != 0 || res.Breakdown.Time[sim.StateSleep] != 0 {
		t.Fatal("uncontended lock waited")
	}
	if res.Stats.Acquires != 50 {
		t.Fatalf("acquires = %d", res.Stats.Acquires)
	}
}

func TestErraticHoldTimesTriggerCutoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 24
	cfg.HoldJitter = 1.2 // wildly varying critical sections
	cfg.MeanThink = 10 * sim.Microsecond
	res := NewMachine(cfg, ThriftyLock()).Run()
	if res.Stats.Disables == 0 {
		t.Skipf("no disables under jitter 1.2 (stats: %+v)", res.Stats)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := NewMachine(cfg, ThriftyLock()).Run()
	b := NewMachine(cfg, ThriftyLock()).Run()
	if a.Span != b.Span || math.Abs(a.Breakdown.TotalEnergy()-b.Breakdown.TotalEnergy()) > 1e-9 {
		t.Fatal("lock runs not deterministic")
	}
}

// Accounting conservation: thread time (think + hold + waits) covers most
// of the span under every strategy (slack only from post-finish idling).
func TestLockAccountingConservation(t *testing.T) {
	cfg := DefaultConfig()
	for _, opts := range []Options{SpinLock(), ThriftyLock(), NaiveLock(), OracleLock()} {
		res := NewMachine(cfg, opts).Run()
		total := res.Breakdown.TotalTime()
		upper := sim.Cycles(cfg.Threads) * res.Span
		if total > upper {
			t.Fatalf("%s: accounted %v exceeds %v", opts.Name, total, upper)
		}
		if float64(total) < 0.80*float64(upper) {
			t.Fatalf("%s: accounted %v far below %v", opts.Name, total, upper)
		}
	}
}
