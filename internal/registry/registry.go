// Package registry provides the sharded, open-addressed concurrent map
// behind thrifty.Group and the remote server's barrier table: lock-free
// lookup by name or by numeric ID, with writers serialized per shard.
//
// The layout follows the classic MCS-style padding discipline for shared
// synchronization state (SNIPPETS.md snippets 1 and 3: one padded cache
// line per participant): each shard's mutable header occupies its own
// cache line, so insert traffic on one shard never bounces the line a
// reader of another shard is spinning through. Reads take no lock at
// all: a shard publishes an immutable open-addressed table through an
// atomic pointer, entries are immutable once stored except for a
// tombstone flag, and a lookup is hash → shard → linear probe over
// atomic slot pointers — zero allocations, zero stores.
//
// Write protocol (under the shard mutex): inserts probe the live table
// and store the new entry's pointer into the first empty slot — readers
// observe it atomically, so a concurrent lookup either sees the entry or
// misses it, never a torn state. Deletes set the entry's tombstone flag;
// the slot keeps the entry so concurrent probes continue past it (an
// empty slot is the only probe terminator). When live+dead entries cross
// the load-factor bound, the writer rebuilds a right-sized table without
// tombstones and republishes the pointer; readers mid-probe on the old
// table still see every live entry, because entries are shared between
// tables and the tombstone flag travels with them.
//
// IDs encode their shard in the low bits, so GetByID routes straight to
// the owning shard without hashing.
package registry

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// entry is one key→value binding. Immutable after publication except for
// dead, the tombstone flag shared by every table that references it.
type entry[V any] struct {
	hash uint64
	key  string
	id   uint64
	val  V
	dead atomic.Bool
}

// table is one immutable open-addressed probe array (power-of-two
// sized). Slots hold atomic pointers so a writer can publish a new entry
// into a live table without copying it.
type table[V any] struct {
	mask  uint64
	slots []atomic.Pointer[entry[V]]
}

// shard is one independent partition: a padded single-cache-line header
// of writer state in front of the two published tables.
type shard[V any] struct {
	mu   sync.Mutex // writers only; readers never take it
	live atomic.Int64
	dead int // tombstones in byName (== byID's, entries are shared)
	seq  uint64
	_    [64]byte // one shard's write traffic must not bounce a neighbour's line

	byName atomic.Pointer[table[V]]
	byID   atomic.Pointer[table[V]]
	_      [64]byte
}

// Registry is a sharded concurrent map with lock-free lookups. The zero
// value is not usable; build one with New. A Registry must not be copied.
type Registry[V any] struct {
	shardBits uint
	mask      uint64
	shards    []shard[V]
}

const minTableSize = 8

// New builds a registry with the given shard count (rounded up to a
// power of two; values < 1 select 1).
func New[V any](shards int) *Registry[V] {
	if shards < 1 {
		shards = 1
	}
	n := 1 << bits.Len(uint(shards-1))
	r := &Registry[V]{
		shardBits: uint(bits.TrailingZeros(uint(n))),
		mask:      uint64(n - 1),
		shards:    make([]shard[V], n),
	}
	for i := range r.shards {
		r.shards[i].byName.Store(newTable[V](minTableSize))
		r.shards[i].byID.Store(newTable[V](minTableSize))
	}
	return r
}

func newTable[V any](size int) *table[V] {
	return &table[V]{mask: uint64(size - 1), slots: make([]atomic.Pointer[entry[V]], size)}
}

// hashString is FNV-1a 64, inlined so the lookup fast path allocates
// nothing and never leaves the package.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 spreads an ID over the byID probe space (splitmix64 finalizer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardFor picks the shard from the low hash bits; probe indexes use the
// bits above them, so a shard's table does not cluster on the bits that
// selected the shard.
func (r *Registry[V]) shardFor(h uint64) *shard[V] {
	return &r.shards[h&r.mask]
}

func (r *Registry[V]) probeHash(h uint64) uint64 { return h >> r.shardBits }

// lookup probes t for a live entry with the given probe hash and key.
func lookup[V any](t *table[V], ph uint64, key string) *entry[V] {
	for i := ph & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i].Load()
		if e == nil {
			return nil
		}
		if e.hash == ph && e.key == key && !e.dead.Load() {
			return e
		}
	}
}

// Get returns the value and ID bound to name. Lock-free and
// allocation-free; a lookup concurrent with an insert of the same name
// may miss it.
func (r *Registry[V]) Get(name string) (V, uint64, bool) {
	h := hashString(name)
	sh := r.shardFor(h)
	if e := lookup(sh.byName.Load(), r.probeHash(h), name); e != nil {
		return e.val, e.id, true
	}
	var zero V
	return zero, 0, false
}

// GetByID returns the value bound to id (as returned by Insert or
// GetOrCreate). Lock-free: the shard comes from the ID's low bits, the
// probe from a mixed hash of it.
func (r *Registry[V]) GetByID(id uint64) (V, bool) {
	if id == 0 {
		var zero V
		return zero, false
	}
	sh := &r.shards[id&r.mask]
	t := sh.byID.Load()
	ph := mix64(id)
	for i := ph & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i].Load()
		if e == nil {
			var zero V
			return zero, false
		}
		if e.id == id && !e.dead.Load() {
			return e.val, true
		}
	}
}

// GetOrCreate returns the value bound to name, creating it with mk under
// the shard lock if absent. The bool reports whether mk ran (mk is
// called at most once, and only when the binding is actually inserted).
func (r *Registry[V]) GetOrCreate(name string, mk func() V) (V, uint64, bool) {
	h := hashString(name)
	sh := r.shardFor(h)
	ph := r.probeHash(h)
	if e := lookup(sh.byName.Load(), ph, name); e != nil {
		return e.val, e.id, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := lookup(sh.byName.Load(), ph, name); e != nil { // lost the insert race
		return e.val, e.id, false
	}
	v := mk()
	id := r.insertLocked(sh, h, name, v)
	return v, id, true
}

// Insert binds name to v, failing (ok=false, id 0) if a live binding
// already exists.
func (r *Registry[V]) Insert(name string, v V) (uint64, bool) {
	h := hashString(name)
	sh := r.shardFor(h)
	ph := r.probeHash(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if lookup(sh.byName.Load(), ph, name) != nil {
		return 0, false
	}
	return r.insertLocked(sh, h, name, v), true
}

// insertLocked files a new entry in both tables (caller holds sh.mu).
// IDs are never zero (seq starts at 1) and encode the shard in the low
// bits, so GetByID routes without hashing the name.
func (r *Registry[V]) insertLocked(sh *shard[V], h uint64, name string, v V) uint64 {
	sh.seq++
	id := sh.seq<<r.shardBits | (h & r.mask)
	e := &entry[V]{hash: r.probeHash(h), key: name, id: id, val: v}
	r.growLocked(sh)
	store(sh.byName.Load(), e.hash, e)
	store(sh.byID.Load(), mix64(id), e)
	sh.live.Add(1)
	return id
}

// store publishes e into the first empty slot of t's probe sequence.
func store[V any](t *table[V], ph uint64, e *entry[V]) {
	for i := ph & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i].Load() == nil {
			t.slots[i].Store(e)
			return
		}
	}
}

// growLocked rebuilds both tables when the next insert would push
// occupancy (live + tombstones + 1) past 3/4, dropping tombstones. New
// size targets 2× the live count (never below the minimum), so a
// delete-heavy workload shrinks back.
func (r *Registry[V]) growLocked(sh *shard[V]) {
	t := sh.byName.Load()
	live := int(sh.live.Load())
	if uint64(live+sh.dead+1)*4 <= (t.mask+1)*3 {
		return
	}
	size := minTableSize
	for size*2 < (live+1)*4 { // ×2 headroom over live
		size <<= 1
	}
	nn := newTable[V](size)
	ni := newTable[V](size)
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil && !e.dead.Load() {
			store(nn, e.hash, e)
			store(ni, mix64(e.id), e)
		}
	}
	sh.dead = 0
	sh.byName.Store(nn)
	sh.byID.Store(ni)
}

// Delete removes the binding for name if match (nil = always) accepts
// its current value, returning the removed value.
func (r *Registry[V]) Delete(name string, match func(V) bool) (V, bool) {
	h := hashString(name)
	sh := r.shardFor(h)
	ph := r.probeHash(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := lookup(sh.byName.Load(), ph, name)
	if e == nil || (match != nil && !match(e.val)) {
		var zero V
		return zero, false
	}
	e.dead.Store(true)
	sh.dead++
	sh.live.Add(-1)
	return e.val, true
}

// Len reports the number of live bindings.
func (r *Registry[V]) Len() int {
	n := int64(0)
	for i := range r.shards {
		n += r.shards[i].live.Load()
	}
	return int(n)
}

// Range calls f for every live binding until it returns false. It
// iterates a per-shard snapshot lock-free: bindings inserted or deleted
// concurrently may or may not be observed.
func (r *Registry[V]) Range(f func(name string, id uint64, v V) bool) {
	for i := range r.shards {
		t := r.shards[i].byName.Load()
		for j := range t.slots {
			if e := t.slots[j].Load(); e != nil && !e.dead.Load() {
				if !f(e.key, e.id, e.val) {
					return
				}
			}
		}
	}
}
