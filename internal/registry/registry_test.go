package registry

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicInsertGetDelete(t *testing.T) {
	r := New[int](4)
	if _, _, ok := r.Get("a"); ok {
		t.Fatal("Get on empty registry succeeded")
	}
	id, ok := r.Insert("a", 1)
	if !ok || id == 0 {
		t.Fatalf("Insert(a) = (%d, %v)", id, ok)
	}
	if _, dup := r.Insert("a", 2); dup {
		t.Fatal("duplicate Insert succeeded")
	}
	v, gid, ok := r.Get("a")
	if !ok || v != 1 || gid != id {
		t.Fatalf("Get(a) = (%d, %d, %v), want (1, %d, true)", v, gid, ok, id)
	}
	if v, ok := r.GetByID(id); !ok || v != 1 {
		t.Fatalf("GetByID(%d) = (%d, %v)", id, v, ok)
	}
	if _, ok := r.GetByID(0); ok {
		t.Fatal("GetByID(0) succeeded")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if v, ok := r.Delete("a", nil); !ok || v != 1 {
		t.Fatalf("Delete(a) = (%d, %v)", v, ok)
	}
	if _, _, ok := r.Get("a"); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if _, ok := r.GetByID(id); ok {
		t.Fatal("GetByID after Delete succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", r.Len())
	}
}

func TestGetOrCreate(t *testing.T) {
	r := New[string](1)
	calls := 0
	v, id, created := r.GetOrCreate("x", func() string { calls++; return "made" })
	if !created || v != "made" || calls != 1 || id == 0 {
		t.Fatalf("first GetOrCreate = (%q, %d, %v), calls %d", v, id, created, calls)
	}
	v2, id2, created2 := r.GetOrCreate("x", func() string { calls++; return "remade" })
	if created2 || v2 != "made" || id2 != id || calls != 1 {
		t.Fatalf("second GetOrCreate = (%q, %d, %v), calls %d", v2, id2, created2, calls)
	}
}

func TestConditionalDelete(t *testing.T) {
	r := New[int](2)
	r.Insert("k", 7)
	if _, ok := r.Delete("k", func(v int) bool { return v == 8 }); ok {
		t.Fatal("Delete with rejecting match succeeded")
	}
	if _, _, ok := r.Get("k"); !ok {
		t.Fatal("rejected Delete removed the binding")
	}
	if _, ok := r.Delete("k", func(v int) bool { return v == 7 }); !ok {
		t.Fatal("Delete with accepting match failed")
	}
}

// TestReinsertAfterDelete covers the tombstone path: a deleted name must
// be insertable again, get a fresh ID, and probe chains must continue
// past tombstones to reach entries filed behind them.
func TestReinsertAfterDelete(t *testing.T) {
	r := New[int](1)
	id1, _ := r.Insert("n", 1)
	r.Delete("n", nil)
	id2, ok := r.Insert("n", 2)
	if !ok {
		t.Fatal("re-insert after delete failed")
	}
	if id2 == id1 {
		t.Fatalf("re-insert reused ID %d", id1)
	}
	if v, _, ok := r.Get("n"); !ok || v != 2 {
		t.Fatalf("Get after re-insert = (%d, %v), want (2, true)", v, ok)
	}
	if v, ok := r.GetByID(id2); !ok || v != 2 {
		t.Fatalf("GetByID(new) = (%d, %v)", v, ok)
	}
	if _, ok := r.GetByID(id1); ok {
		t.Fatal("stale ID still resolves")
	}
}

// TestGrowAndChurn pushes a shard through many rehashes with a mix of
// inserts and deletes, then verifies every surviving binding resolves by
// name and by ID with the right value.
func TestGrowAndChurn(t *testing.T) {
	r := New[int](2)
	ids := map[string]uint64{}
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("key-%d", i)
		id, ok := r.Insert(name, i)
		if !ok {
			t.Fatalf("Insert(%s) failed", name)
		}
		ids[name] = id
		if i%3 == 0 {
			victim := fmt.Sprintf("key-%d", i/2)
			if _, ok := r.Delete(victim, nil); ok {
				delete(ids, victim)
			}
		}
	}
	if r.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(ids))
	}
	for name, id := range ids {
		var want int
		fmt.Sscanf(name, "key-%d", &want)
		if v, gid, ok := r.Get(name); !ok || v != want || gid != id {
			t.Fatalf("Get(%s) = (%d, %d, %v), want (%d, %d, true)", name, v, gid, ok, want, id)
		}
		if v, ok := r.GetByID(id); !ok || v != want {
			t.Fatalf("GetByID(%d) = (%d, %v), want (%d, true)", id, v, ok, want)
		}
	}
	seen := 0
	r.Range(func(name string, id uint64, v int) bool {
		if ids[name] != id {
			t.Fatalf("Range visited %s with id %d, want %d", name, id, ids[name])
		}
		seen++
		return true
	})
	if seen != len(ids) {
		t.Fatalf("Range visited %d bindings, want %d", seen, len(ids))
	}
}

// TestConcurrentReadersWriters runs lock-free readers against inserting
// and deleting writers under -race: readers must never see a torn or
// wrong-valued binding.
func TestConcurrentReadersWriters(t *testing.T) {
	r := New[uint64](4)
	const (
		writers = 4
		perW    = 400
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ { // readers
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 64; i++ {
					name := fmt.Sprintf("w%d-%d", i%writers, i)
					if v, id, ok := r.Get(name); ok {
						if v != uint64(i) {
							t.Errorf("Get(%s) = %d, want %d", name, v, i)
							return
						}
						if got, ok := r.GetByID(id); ok && got != uint64(i) {
							t.Errorf("GetByID(%d) = %d, want %d", id, got, i)
							return
						}
					}
				}
			}
		}(g)
	}
	var wwg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wwg.Add(1)
		go func(wid int) {
			defer wwg.Done()
			for i := 0; i < perW; i++ {
				name := fmt.Sprintf("w%d-%d", wid, i)
				r.Insert(name, uint64(i))
				if i%2 == 0 {
					r.Delete(fmt.Sprintf("w%d-%d", wid, i/2), nil)
				}
			}
		}(wid)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
}

func TestZeroAllocLookup(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 100; i++ {
		r.Insert(fmt.Sprintf("key-%d", i), i)
	}
	_, id, _ := r.Get("key-42")
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := r.Get("key-42"); !ok {
			t.Fatal("miss")
		}
		if _, ok := r.GetByID(id); !ok {
			t.Fatal("ID miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("lookup allocates %.1f/op, want 0", allocs)
	}
}
