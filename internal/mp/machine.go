// Package mp extends the thrifty barrier to message-passing machines — the
// first of the two future-work directions named in the paper's conclusion
// ("extending this concept to other parallel computing environments, such
// as message-passing systems").
//
// The modeled machine is a cluster of N single-CPU nodes on the same
// hypercube interconnect as the shared-memory system, with no cache
// coherence: barriers are a NIC-combined reduction tree up and a broadcast
// down. The mapping of the paper's mechanisms:
//
//   - The combining/forwarding of arrival messages happens in the NIC
//     (in-network collectives), just as the cache controller handles
//     coherence while the CPU sleeps: a dormant CPU never has to forward.
//   - External wake-up: the arrival of the release broadcast at a node's
//     NIC (the analogue of the barrier-flag invalidation).
//   - Internal wake-up: a NIC timer armed with the predicted stall.
//   - BIT bookkeeping: the root measures BIT between its own release
//     instants and carries it in the broadcast payload, so every node
//     reconstructs its local release timestamp without a global clock —
//     the same §3.2.1 induction, with the message replacing the shared
//     BIT variable.
//
// Power uses the same calibrated model and Table 3 sleep states; there are
// no caches to flush, so deep states carry no flush cost here (their NICs
// buffer like the cache controller buffers clean invalidations).
package mp

import (
	"fmt"

	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// Algorithm selects the collective used by the barrier.
type Algorithm int

const (
	// TreeBarrier is a Fanout-ary NIC-combined reduction tree plus a
	// broadcast down — the default.
	TreeBarrier Algorithm = iota
	// DisseminationBarrier is the classic log2(N)-round dissemination
	// algorithm, run autonomously by the NICs: each round r, rank i's NIC
	// signals rank (i+2^r) mod N and waits for rank (i-2^r) mod N. All
	// NICs complete within one message latency of each other — no
	// broadcast skew down a tree — at the cost of N·log N messages.
	DisseminationBarrier
)

func (a Algorithm) String() string {
	switch a {
	case TreeBarrier:
		return "tree"
	case DisseminationBarrier:
		return "dissemination"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config describes the message-passing machine.
type Config struct {
	// Nodes is the cluster size (power of two, for the hypercube).
	Nodes int
	// Algorithm selects the barrier collective.
	Algorithm Algorithm
	// Fanout is the combining-tree arity (TreeBarrier only).
	Fanout int
	// NoC is the interconnect model (Table 1 parameters by default).
	NoC noc.Config
	// Combine is the NIC latency to fold one child arrival into the local
	// reduction state.
	Combine sim.Cycles
	// NICWake is the NIC-to-CPU wake signal latency.
	NICWake sim.Cycles
	// MsgBytes sizes barrier control messages.
	MsgBytes int
	// IPC converts program instruction counts into time.
	IPC float64
}

// DefaultConfig is a 64-node cluster mirroring Table 1's interconnect.
func DefaultConfig() Config {
	return Config{
		Nodes:    64,
		Fanout:   4,
		NoC:      noc.DefaultConfig(),
		Combine:  20 * sim.Nanosecond,
		NICWake:  40 * sim.Nanosecond,
		MsgBytes: 16,
		IPC:      2.0,
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes&(c.Nodes-1) != 0 {
		return fmt.Errorf("mp: node count %d not a positive power of two", c.Nodes)
	}
	if c.Algorithm == TreeBarrier && c.Fanout < 2 {
		return fmt.Errorf("mp: fanout %d < 2", c.Fanout)
	}
	if c.Algorithm != TreeBarrier && c.Algorithm != DisseminationBarrier {
		return fmt.Errorf("mp: unknown algorithm %d", int(c.Algorithm))
	}
	if c.NoC.Nodes != c.Nodes {
		return fmt.Errorf("mp: NoC size %d != nodes %d", c.NoC.Nodes, c.Nodes)
	}
	if err := c.NoC.Validate(); err != nil {
		return err
	}
	if c.Combine < 0 || c.NICWake < 0 || c.MsgBytes <= 0 || c.IPC <= 0 {
		return fmt.Errorf("mp: invalid NIC/CPU parameters in %+v", c)
	}
	return nil
}

// Phase is one dynamic barrier instance of an SPMD message-passing
// program: per-rank compute work followed by a barrier at a static PC.
type Phase struct {
	PC uint64
	// Work returns rank's compute duration for this instance.
	Work func(rank int) sim.Cycles
}

// Program is a sequence of phases common to all ranks.
type Program []Phase

// Options selects the barrier strategy.
type Options struct {
	// Name labels the configuration.
	Name string
	// States is the sleep-state catalogue; empty means spin-polling
	// (Baseline).
	States []power.SleepState
	// Oracle uses perfect stall knowledge (the bound).
	Oracle bool
	// Cutoff is the §3.3.3 overprediction threshold (fraction of BIT).
	Cutoff float64
	// Predictor configures the BIT table.
	Predictor predict.Config
}

// Baseline spin-polls the NIC.
func Baseline() Options {
	return Options{Name: "MP-Baseline", Predictor: predict.DefaultConfig()}
}

// Thrifty predicts stalls and sleeps with hybrid wake-up.
func Thrifty() Options {
	return Options{
		Name:      "MP-Thrifty",
		States:    power.Table3(),
		Cutoff:    0.10,
		Predictor: predict.DefaultConfig(),
	}
}

// Oracle is Thrifty with perfect prediction.
func Oracle() Options {
	o := Thrifty()
	o.Name = "MP-Oracle"
	o.Oracle = true
	return o
}

// Result is the outcome of one run.
type Result struct {
	Breakdown energy.Breakdown
	Span      sim.Cycles
	Stats     Stats
}

// Stats counts mechanism events.
type Stats struct {
	Episodes      int
	Spins         int
	Sleeps        map[string]int
	EarlyWakes    int
	ExternalWakes int
	LateWakes     int
	Disables      int
}

// Machine is the simulated cluster.
type Machine struct {
	cfg    Config
	opts   Options
	engine *sim.Engine
	net    *noc.Network
	model  *power.Model
	table  *predict.Table

	prog     Program
	brts     []sim.Cycles
	tl       []*sim.Timeline
	finish   []sim.Cycles
	episodes map[int]*episode
	stats    Stats

	parent   []int
	children [][]int
	depthLat []sim.Cycles // root-to-rank broadcast latency
}

// NewMachine assembles a cluster. Invalid configuration is reported as an
// error (not a panic) so that cmd front-ends can route it to their usual
// flag-validation exit path.
func NewMachine(cfg Config, opts Options) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Predictor.Validate(); err != nil {
		return nil, err
	}
	var model *power.Model
	if len(opts.States) > 0 {
		model = power.NewModel(power.DefaultUnitEnergies(), opts.States)
	} else {
		model = power.NewModel(power.DefaultUnitEnergies(), power.Table3())
	}
	m := &Machine{
		cfg:      cfg,
		opts:     opts,
		engine:   sim.NewEngine(),
		net:      noc.New(cfg.NoC),
		model:    model,
		table:    predict.NewTable(opts.Predictor),
		brts:     make([]sim.Cycles, cfg.Nodes),
		tl:       make([]*sim.Timeline, cfg.Nodes),
		finish:   make([]sim.Cycles, cfg.Nodes),
		episodes: make(map[int]*episode),
	}
	for i := range m.tl {
		m.tl[i] = &sim.Timeline{}
	}
	m.buildTree()
	m.stats.Sleeps = make(map[string]int)
	return m, nil
}

// MustNewMachine is NewMachine for tests and examples: it panics on invalid
// configuration instead of returning an error.
func MustNewMachine(cfg Config, opts Options) *Machine {
	m, err := NewMachine(cfg, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// buildTree lays the Fanout-ary combining tree over ranks 0..N-1 (rank 0
// is the root) and precomputes broadcast latencies down the tree.
func (m *Machine) buildTree() {
	n := m.cfg.Nodes
	m.parent = make([]int, n)
	m.children = make([][]int, n)
	m.depthLat = make([]sim.Cycles, n)
	m.parent[0] = -1
	for r := 1; r < n; r++ {
		p := (r - 1) / m.cfg.Fanout
		m.parent[r] = p
		m.children[p] = append(m.children[p], r)
	}
	// Broadcast latency accumulates hop by hop down the tree.
	var walk func(r int, lat sim.Cycles)
	walk = func(r int, lat sim.Cycles) {
		m.depthLat[r] = lat
		for _, c := range m.children[r] {
			walk(c, lat+m.net.Latency(r, c, m.cfg.MsgBytes)+m.cfg.Combine)
		}
	}
	walk(0, 0)
}

// episode is one dynamic barrier instance.
type episode struct {
	phase    int
	pc       uint64
	arrived  int
	released bool
	release  sim.Cycles // at the root (rank 0's completion)
	// recvAt[r] is when the completion signal reaches rank r's NIC.
	recvAt []sim.Cycles
	bit    sim.Cycles
	// subtreeAt[r] is when r's subtree reduction reaches r's NIC (own
	// arrival folded with children); set as arrivals stream in.
	subtreeAt []sim.Cycles
	// arrivalAt[r] records each rank's local arrival (dissemination).
	arrivalAt []sim.Cycles
	pending   []int // outstanding children + self per rank
	waiters   []*waiter
	departed  int
}

type waiter struct {
	rank      int
	readyAt   sim.Cycles
	sleeping  bool
	state     power.SleepState
	sleepFrom sim.Cycles
	timer     sim.Handle
	woken     bool
	wokeReady sim.Cycles
	departed  bool
	oracle    bool
}

// Run executes prog and returns the measurement.
func (m *Machine) Run(prog Program) Result {
	if len(prog) == 0 {
		return Result{}
	}
	m.prog = prog
	for r := 0; r < m.cfg.Nodes; r++ {
		r := r
		m.engine.At(0, func() { m.startPhase(r, 0, 0) })
	}
	m.engine.Run()
	var span sim.Cycles
	for _, f := range m.finish {
		if f > span {
			span = f
		}
	}
	return Result{
		Breakdown: energy.Collect(m.tl, span),
		Span:      span,
		Stats:     m.stats,
	}
}

func (m *Machine) startPhase(r, k int, at sim.Cycles) {
	if k >= len(m.prog) {
		m.finish[r] = at
		return
	}
	dur := m.prog[k].Work(r)
	if dur <= 0 {
		dur = 1
	}
	m.tl[r].AddInterval(sim.StateCompute, dur, m.model.ComputePower())
	arrive := at + dur
	m.engine.At(arrive, func() { m.arrive(r, k, arrive) })
}

func (m *Machine) episodeFor(k int) *episode {
	ep := m.episodes[k]
	if ep == nil {
		n := m.cfg.Nodes
		ep = &episode{
			phase:     k,
			pc:        m.prog[k].PC,
			subtreeAt: make([]sim.Cycles, n),
			pending:   make([]int, n),
			recvAt:    make([]sim.Cycles, n),
			arrivalAt: make([]sim.Cycles, n),
		}
		for r := 0; r < n; r++ {
			ep.pending[r] = len(m.children[r]) + 1
		}
		m.episodes[k] = ep
	}
	return ep
}

// arrive handles rank r's local arrival: fold into the NIC reduction and
// decide how to wait.
func (m *Machine) arrive(r, k int, now sim.Cycles) {
	ep := m.episodeFor(k)
	ep.arrived++

	// Register the waiter and pick its strategy BEFORE folding: folding
	// the last arrival propagates to the root and may release the episode
	// synchronously, and the release resolves every registered waiter.
	// Unlike the shared-memory barrier, even the last arriver waits here —
	// for the reduction to reach the root and the broadcast to return.
	w := &waiter{rank: r, readyAt: now}
	ep.waiters = append(ep.waiters, w)
	switch {
	case len(m.opts.States) == 0:
		m.stats.Spins++ // spin-polls; resolved at release
	case m.opts.Oracle:
		w.oracle = true
	default:
		m.decideSleep(ep, w, now)
	}

	ep.arrivalAt[r] = now
	if m.cfg.Algorithm == DisseminationBarrier {
		if ep.arrived == m.cfg.Nodes {
			m.releaseDissemination(ep)
		}
		return
	}
	m.fold(ep, r, now)
}

// releaseDissemination resolves the log2(N)-round dissemination collective
// once every rank has armed its NIC: round r completes for rank i when both
// its own round r-1 and that of rank (i-2^r) mod N (whose signal travels
// the network) are done.
func (m *Machine) releaseDissemination(ep *episode) {
	n := m.cfg.Nodes
	cur := append([]sim.Cycles(nil), ep.arrivalAt...)
	next := make([]sim.Cycles, n)
	for dist := 1; dist < n; dist <<= 1 {
		for i := 0; i < n; i++ {
			from := (i - dist + n) % n
			recv := cur[from] + m.net.Latency(from, i, m.cfg.MsgBytes)
			t := cur[i]
			if recv > t {
				t = recv
			}
			next[i] = t + m.cfg.Combine
		}
		cur, next = next, cur
	}
	copy(ep.recvAt, cur)
	m.resolveRelease(ep, cur[0])
}

// fold merges a subtree-completion at rank r into r's NIC state and
// propagates up the tree when r's subtree is complete.
func (m *Machine) fold(ep *episode, r int, at sim.Cycles) {
	if at > ep.subtreeAt[r] {
		ep.subtreeAt[r] = at
	}
	ep.pending[r]--
	if ep.pending[r] > 0 {
		return
	}
	done := ep.subtreeAt[r] + m.cfg.Combine
	if p := m.parent[r]; p >= 0 {
		lat := m.net.Latency(r, p, m.cfg.MsgBytes)
		m.engine.At(done+lat, func() { m.fold(ep, p, done+lat) })
		return
	}
	// Root subtree complete: release; the broadcast reaches each rank
	// after its tree-path latency.
	for r := 0; r < m.cfg.Nodes; r++ {
		ep.recvAt[r] = done + m.depthLat[r]
	}
	m.resolveRelease(ep, done)
}

// decideSleep is the sleep() call on the cluster node.
func (m *Machine) decideSleep(ep *episode, w *waiter, now sim.Cycles) {
	if !m.table.Enabled(ep.pc, w.rank) {
		m.stats.Spins++
		return
	}
	bit, ok := m.table.Predict(ep.pc)
	if !ok {
		m.stats.Spins++
		return
	}
	predictedWake := m.brts[w.rank] + bit
	stall := predictedWake - now
	fit := m.model.BestFit(stall, 0)
	if !fit.OK {
		m.stats.Spins++
		return
	}
	st := fit.State
	w.sleeping = true
	w.state = st
	m.tl[w.rank].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
	w.sleepFrom = now + st.Transition
	m.stats.Sleeps[st.Name]++
	wake := predictedWake - st.Transition
	if wake < w.sleepFrom {
		wake = w.sleepFrom
	}
	w.timer = m.engine.At(wake, func() { m.timerWake(ep, w, wake) })
}

// timerWake is the internal wake-up on the cluster node.
func (m *Machine) timerWake(ep *episode, w *waiter, now sim.Cycles) {
	if w.departed || w.woken {
		return
	}
	w.woken = true
	w.timer = sim.Handle{}
	st := w.state
	m.chargeSleep(w, now)
	up := now + st.Transition
	m.tl[w.rank].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
	w.wokeReady = up
	recvAt := sim.MaxCycles
	if ep.released {
		recvAt = ep.recvAt[w.rank]
	}
	if ep.released && up >= recvAt {
		// Late wake: the release broadcast already arrived.
		m.stats.LateWakes++
		m.depart(ep, w, up+m.cfg.NICWake)
		return
	}
	// Early wake: residual spin-poll until the broadcast.
	m.stats.EarlyWakes++
	if ep.released {
		// Broadcast en route: it lands at recvAt.
		spin := recvAt + m.cfg.NICWake - up
		if spin < 0 {
			spin = 0
		}
		m.tl[w.rank].AddInterval(sim.StateSpin, spin, m.model.SpinPower())
		m.depart(ep, w, recvAt+m.cfg.NICWake)
		return
	}
	w.sleeping = false
	w.readyAt = up // resolved at release as a spinner
}

func (m *Machine) chargeSleep(w *waiter, until sim.Cycles) {
	if until > w.sleepFrom {
		m.tl[w.rank].AddInterval(sim.StateSleep, until-w.sleepFrom, m.model.SleepPower(w.state))
	}
}

// resolveRelease runs when the collective completes: measure BIT, update
// the predictor, and resolve every waiter at its NIC's completion time
// (the broadcast arrival for the tree, the final-round receive for
// dissemination) — the completion message carries the BIT.
func (m *Machine) resolveRelease(ep *episode, at sim.Cycles) {
	ep.released = true
	ep.release = at
	ep.bit = at - m.brts[0]
	m.stats.Episodes++
	if len(m.opts.States) > 0 && !m.opts.Oracle {
		m.table.Update(ep.pc, ep.bit)
	}

	for _, w := range ep.waiters {
		w := w
		recvAt := ep.recvAt[w.rank]
		switch {
		case w.oracle:
			m.resolveOracle(ep, w, recvAt)
		case w.sleeping && !w.woken:
			// External wake-up: the broadcast reaches the NIC, which
			// signals the CPU; exit transition on the critical path.
			m.engine.At(recvAt, func() { m.externalWake(ep, w, recvAt) })
		default:
			// Spinner (or residual spinner): detects the message at
			// arrival.
			m.engine.At(recvAt, func() {
				if w.departed {
					return
				}
				dep := recvAt + m.cfg.NICWake
				from := w.readyAt
				if dep > from {
					m.tl[w.rank].AddInterval(sim.StateSpin, dep-from, m.model.SpinPower())
				}
				m.depart(ep, w, dep)
			})
		}
	}
	// Late-arriving ranks (none in a barrier program: every rank arrives
	// before the root completes, since the root needs all subtrees).
}

func (m *Machine) externalWake(ep *episode, w *waiter, at sim.Cycles) {
	if w.departed || w.woken {
		return
	}
	w.woken = true
	m.engine.Cancel(w.timer)
	w.timer = sim.Handle{}
	if at < w.sleepFrom {
		at = w.sleepFrom
	}
	m.chargeSleep(w, at)
	st := w.state
	m.tl[w.rank].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
	up := at + st.Transition
	w.wokeReady = up
	m.stats.ExternalWakes++
	m.depart(ep, w, up+m.cfg.NICWake)
}

// resolveOracle settles a perfectly predicted waiter at broadcast arrival.
func (m *Machine) resolveOracle(ep *episode, w *waiter, recvAt sim.Cycles) {
	m.engine.At(recvAt, func() {
		if w.departed {
			return
		}
		stall := recvAt - w.readyAt
		fit := m.model.BestFit(stall, 0)
		if fit.OK {
			st := fit.State
			m.tl[w.rank].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
			m.tl[w.rank].AddInterval(sim.StateSleep, stall-2*st.Transition, m.model.SleepPower(st))
			m.tl[w.rank].AddInterval(sim.StateTransition, st.Transition, m.model.TransitionPower(st))
			m.stats.Sleeps[st.Name]++
		} else if stall > 0 {
			m.tl[w.rank].AddInterval(sim.StateSpin, stall, m.model.SpinPower())
			m.stats.Spins++
		}
		m.depart(ep, w, recvAt+m.cfg.NICWake)
	})
}

// depart finishes rank's episode: BRTS update, cut-off, next phase.
func (m *Machine) depart(ep *episode, w *waiter, dep sim.Cycles) {
	if w.departed {
		return
	}
	w.departed = true
	m.engine.Cancel(w.timer)
	w.timer = sim.Handle{}
	// BRTS reconstruction: the broadcast carried BIT_b.
	m.brts[w.rank] += ep.bit

	if w.sleeping && !w.oracle && m.opts.Cutoff > 0 && ep.bit > 0 {
		skew := ep.recvAt[w.rank] - ep.release
		penalty := w.wokeReady - (m.brts[w.rank] + skew)
		if float64(penalty) > m.opts.Cutoff*float64(ep.bit) {
			m.table.Disable(ep.pc, w.rank)
			m.stats.Disables++
		}
	}

	ep.departed++
	if ep.departed == m.cfg.Nodes {
		delete(m.episodes, ep.phase)
	}
	m.startPhase(w.rank, ep.phase+1, dep)
}
