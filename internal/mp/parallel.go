package mp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// ParallelResult extends Result with the per-node detail the scaling study
// reports: every node's energy and spin time (the cross-shard determinism
// contract covers these individually, not just the aggregates), plus
// per-barrier-round latency.
type ParallelResult struct {
	Result
	// Rounds is the number of completed barrier episodes.
	Rounds int
	// RoundLatencySum accumulates, over episodes, the time from the last
	// arrival to the last release delivery — the collective's span.
	RoundLatencySum sim.Cycles
	// PerNodeEnergy is each rank's total energy in joules.
	PerNodeEnergy []float64
	// PerNodeSpin is each rank's total spin time.
	PerNodeSpin []sim.Cycles
}

// MeanRoundLatency is the average barrier-round span.
func (r ParallelResult) MeanRoundLatency() sim.Cycles {
	if r.Rounds == 0 {
		return 0
	}
	return r.RoundLatencySum / sim.Cycles(r.Rounds)
}

// RunParallel executes prog on the conservative parallel engine with the
// given shard count (clamped to [1, Nodes]) and returns the measurement.
// Ranks are block-mapped onto shards (rank r on shard r*shards/Nodes, so a
// shard owns a contiguous NoC region) and the lookahead floor is the one-hop
// NoC latency of a barrier message: no inter-rank interaction — combining
// fold, release broadcast, dissemination round — can take effect sooner, so
// events inside one time window cannot affect another shard within it.
//
// Determinism contract: for a fixed machine and program, RunParallel
// produces the identical ParallelResult — per-node energy and spin included,
// bit for bit — at every shard count. Every event carries an order key
// derived from simulation state only (a per-source-rank counter, or a
// reserved release-delivery key), so each shard's firing order is
// independent of message merge timing; per-rank state is touched only by
// that rank's own events, so each rank's timeline is appended in a fixed
// order and the floating-point sums never reassociate.
//
// RunParallel does not touch the Machine's sequential state: the legacy
// Run remains byte-identical to its pre-parallel behaviour, and one Machine
// can serve both. For Baseline and Oracle options the two paths are
// semantically identical. Under the thrifty policy RunParallel's hybrid
// wake-up is message-accurate — a timer wake-up only learns of the release
// when the broadcast reaches its NIC, so a timer that fires after the root
// released but before the local NIC heard about it counts as an early wake
// (spinning out the residue) rather than consulting global release state
// the node could not observe. The sequential path classifies that corner
// from the root's perspective instead; results/extension_mp.txt keeps the
// legacy accounting.
func (m *Machine) RunParallel(prog Program, shards int) ParallelResult {
	if len(prog) == 0 {
		return ParallelResult{}
	}
	n := m.cfg.Nodes
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	lookahead := m.net.MinLatency(m.cfg.MsgBytes)
	if lookahead < 1 {
		lookahead = 1
	}
	pe := sim.NewParallelEngine(shards, lookahead)
	p := &prun{
		m:        m,
		pe:       pe,
		prog:     prog,
		owner:    make([]int, n),
		orderC:   make([]uint32, n),
		table:    predict.NewTable(m.opts.Predictor),
		brts:     make([]sim.Cycles, n),
		tl:       make([]*sim.Timeline, n),
		finish:   make([]sim.Cycles, n),
		episodes: make(map[int]*pepisode),
		stats:    make([]Stats, shards),
		rounds:   make([]int, shards),
		rlat:     make([]sim.Cycles, shards),
	}
	for r := 0; r < n; r++ {
		p.owner[r] = r * shards / n
		p.tl[r] = &sim.Timeline{}
	}
	for s := range p.stats {
		p.stats[s].Sleeps = make(map[string]int)
	}
	for r := 0; r < n; r++ {
		r := r
		p.at(r, 0, func() { p.startPhase(r, 0, 0) })
	}
	pe.Run()

	var span sim.Cycles
	for _, f := range p.finish {
		if f > span {
			span = f
		}
	}
	res := ParallelResult{
		Result: Result{
			Breakdown: energy.Collect(p.tl, span),
			Span:      span,
		},
		PerNodeEnergy: make([]float64, n),
		PerNodeSpin:   make([]sim.Cycles, n),
	}
	res.Stats.Sleeps = make(map[string]int)
	for s := 0; s < shards; s++ {
		st := &p.stats[s]
		res.Stats.Episodes += st.Episodes
		res.Stats.Spins += st.Spins
		res.Stats.EarlyWakes += st.EarlyWakes
		res.Stats.ExternalWakes += st.ExternalWakes
		res.Stats.LateWakes += st.LateWakes
		res.Stats.Disables += st.Disables
		for name, c := range st.Sleeps {
			res.Stats.Sleeps[name] += c
		}
		res.Rounds += p.rounds[s]
		res.RoundLatencySum += p.rlat[s]
	}
	for r := 0; r < n; r++ {
		res.PerNodeEnergy[r] = p.tl[r].TotalEnergy()
		res.PerNodeSpin[r] = p.tl[r].Time(sim.StateSpin)
	}
	return res
}

// prun is the state of one RunParallel invocation. It deliberately shares
// nothing mutable with the Machine: per-rank state (brts, timelines,
// finish) is touched only by that rank's events, which all execute on the
// rank's owner shard; cross-rank state is either confined to one shard by
// construction (fold state lives on the folding rank's owner) or guarded
// (the episode map, the predictor table).
type prun struct {
	m      *Machine
	pe     *sim.ParallelEngine
	prog   Program
	owner  []int    // owner[r] = shard executing rank r's events
	orderC []uint32 // per-rank order-key counters (only rank r's events touch r's)

	// table is guarded by tableMu. Within one window the only operations
	// that can actually contend are commutative (per-rank Disable bits and
	// per-rank Enabled reads): Update happens-after every same-episode
	// Predict (the resolver is causally last — see resolveTree/arrive), and
	// next-episode Predicts are at least a release delivery later, which is
	// more than a full window away. The mutex is therefore for memory
	// safety, not ordering — ordering is already deterministic.
	tableMu sync.Mutex
	table   *predict.Table

	brts   []sim.Cycles
	tl     []*sim.Timeline
	finish []sim.Cycles

	epMu     sync.Mutex
	episodes map[int]*pepisode

	// Per-shard accumulators, merged after the run; sums are invariant to
	// which shard an increment landed on.
	stats  []Stats
	rounds []int
	rlat   []sim.Cycles
}

// pepisode is one dynamic barrier instance of a parallel run.
type pepisode struct {
	phase int
	pc    uint64
	// arrived is the dissemination trigger: the final Add observes every
	// earlier rank's arrivalAt write and waiter registration.
	arrived  atomic.Int32
	departed atomic.Int32
	// Tree fold state: subtreeAt[r]/pending[r] are touched only by fold
	// events executing on r's owner shard.
	subtreeAt []sim.Cycles
	pending   []int32
	// arrivalAt[r] is written by rank r's arrive, read by the resolver
	// (which happens-after every arrival in both collectives).
	arrivalAt []sim.Cycles
	ws        []pwaiter // indexed by rank; each entry owned by its rank's shard
}

// pwaiter is one rank's waiting state within an episode.
type pwaiter struct {
	readyAt   sim.Cycles
	oracle    bool
	slept     bool // entered a sleep state this episode
	sleeping  bool // still asleep (no timer fired, no wake delivered)
	woken     bool // timer fired; wokeReady is the CPU-ready time
	departed  bool
	state     power.SleepState
	sleepFrom sim.Cycles
	wokeReady sim.Cycles
	timer     sim.Handle
}

// deliveryOrderBit tags release-delivery order keys. Rank counters occupy
// keys with bit 63 clear, so a delivery can never collide with a
// rank-scheduled event at the same cycle; at equal timestamps deliveries
// fire after the rank's own events (e.g. a timer wake-up at exactly the
// broadcast arrival), at every shard count.
const deliveryOrderBit = uint64(1) << 63

// order mints the next order key for events caused by rank r. Only rank
// r's own events call this, so the counter needs no synchronization and
// its sequence is deterministic.
func (p *prun) order(r int) uint64 {
	p.orderC[r]++
	if p.orderC[r] == 0 {
		panic(fmt.Sprintf("mp: rank %d order counter exhausted (2^32-1 events)", r))
	}
	return uint64(r)<<32 | uint64(p.orderC[r])
}

// at schedules fn at when on rank r's shard, keyed by r's order stream.
func (p *prun) at(r int, when sim.Cycles, fn func()) sim.Handle {
	return p.pe.Shard(p.owner[r]).At(when, p.order(r), fn)
}

// send schedules fn, caused by rank src, at when on rank dst's shard —
// locally when both ranks share a shard, else as a cross-shard post (which
// the engine checks against the lookahead).
func (p *prun) send(src, dst int, when sim.Cycles, fn func()) {
	o := p.order(src)
	if p.owner[dst] == p.owner[src] {
		p.pe.Shard(p.owner[src]).At(when, o, fn)
		return
	}
	p.pe.Shard(p.owner[src]).Post(p.owner[dst], when, o, fn)
}

func (p *prun) startPhase(r, k int, atTime sim.Cycles) {
	if k >= len(p.prog) {
		p.finish[r] = atTime
		return
	}
	dur := p.prog[k].Work(r)
	if dur <= 0 {
		dur = 1
	}
	p.tl[r].AddInterval(sim.StateCompute, dur, p.m.model.ComputePower())
	arrive := atTime + dur
	p.at(r, arrive, func() { p.arrive(r, k, arrive) })
}

func (p *prun) episodeFor(k int) *pepisode {
	p.epMu.Lock()
	defer p.epMu.Unlock()
	ep := p.episodes[k]
	if ep == nil {
		n := p.m.cfg.Nodes
		ep = &pepisode{
			phase:     k,
			pc:        p.prog[k].PC,
			subtreeAt: make([]sim.Cycles, n),
			pending:   make([]int32, n),
			arrivalAt: make([]sim.Cycles, n),
			ws:        make([]pwaiter, n),
		}
		for r := 0; r < n; r++ {
			ep.pending[r] = int32(len(p.m.children[r]) + 1)
		}
		p.episodes[k] = ep
	}
	return ep
}

// arrive handles rank r's local arrival, mirroring Machine.arrive: register
// the waiter and pick its strategy first, because folding the last arrival
// can resolve the episode synchronously.
func (p *prun) arrive(r, k int, now sim.Cycles) {
	ep := p.episodeFor(k)
	w := &ep.ws[r]
	w.readyAt = now
	sh := p.owner[r]
	switch {
	case len(p.m.opts.States) == 0:
		p.stats[sh].Spins++
	case p.m.opts.Oracle:
		w.oracle = true
	default:
		p.decideSleep(ep, r, w, now)
	}
	ep.arrivalAt[r] = now
	if p.m.cfg.Algorithm == DisseminationBarrier {
		// The final Add happens-after every other rank's waiter
		// registration and Predict, so the resolver's table update and
		// state reads are both safe and deterministically ordered.
		if ep.arrived.Add(1) == int32(p.m.cfg.Nodes) {
			p.resolveDissemination(ep, r)
		}
		return
	}
	p.fold(ep, r, now)
}

// fold mirrors Machine.fold on the parallel engine: the up-tree hop is a
// send to the parent's owner shard, and the hop latency is at least the
// lookahead, so the conservative invariant holds by construction.
func (p *prun) fold(ep *pepisode, r int, atTime sim.Cycles) {
	if atTime > ep.subtreeAt[r] {
		ep.subtreeAt[r] = atTime
	}
	ep.pending[r]--
	if ep.pending[r] > 0 {
		return
	}
	done := ep.subtreeAt[r] + p.m.cfg.Combine
	if par := p.m.parent[r]; par >= 0 {
		lat := p.m.net.Latency(r, par, p.m.cfg.MsgBytes)
		p.send(r, par, done+lat, func() { p.fold(ep, par, done+lat) })
		return
	}
	p.resolveTree(ep, r, done)
}

// resolveTree completes the tree collective at the root: recvAt[r] is the
// broadcast arrival down the tree, exactly as in the sequential machine.
func (p *prun) resolveTree(ep *pepisode, src int, done sim.Cycles) {
	bit := done - p.brts[0]
	p.resolve(ep, src, done, bit, func(r int) sim.Cycles {
		return done + p.m.depthLat[r]
	})
}

// resolveDissemination replays the log2(N)-round dissemination schedule
// from the recorded arrivals, identically to Machine.releaseDissemination.
func (p *prun) resolveDissemination(ep *pepisode, trigger int) {
	n := p.m.cfg.Nodes
	cur := append([]sim.Cycles(nil), ep.arrivalAt...)
	next := make([]sim.Cycles, n)
	for dist := 1; dist < n; dist <<= 1 {
		for i := 0; i < n; i++ {
			from := (i - dist + n) % n
			recv := cur[from] + p.m.net.Latency(from, i, p.m.cfg.MsgBytes)
			t := cur[i]
			if recv > t {
				t = recv
			}
			next[i] = t + p.m.cfg.Combine
		}
		cur, next = next, cur
	}
	release := cur[0]
	bit := release - p.brts[0]
	p.resolve(ep, trigger, release, bit, func(r int) sim.Cycles { return cur[r] })
}

// resolve completes an episode: update the predictor, account the round,
// and send every rank its release delivery. Deliveries to foreign shards
// are at least one network hop past the resolver's event time (the
// broadcast path for the tree, the final dissemination round otherwise), so
// they clear the lookahead check; the resolving rank's own delivery is
// always shard-local.
func (p *prun) resolve(ep *pepisode, src int, release, bit sim.Cycles, recv func(int) sim.Cycles) {
	sh := p.owner[src]
	p.stats[sh].Episodes++
	if len(p.m.opts.States) > 0 && !p.m.opts.Oracle {
		p.tableMu.Lock()
		p.table.Update(ep.pc, bit)
		p.tableMu.Unlock()
	}
	n := p.m.cfg.Nodes
	var lastArr, lastRecv sim.Cycles
	for r := 0; r < n; r++ {
		if ep.arrivalAt[r] > lastArr {
			lastArr = ep.arrivalAt[r]
		}
		if at := recv(r); at > lastRecv {
			lastRecv = at
		}
	}
	p.rounds[sh]++
	p.rlat[sh] += lastRecv - lastArr
	for r := 0; r < n; r++ {
		r := r
		recvAt := recv(r)
		o := deliveryOrderBit | uint64(r)<<32 | uint64(ep.phase+1)
		fn := func() { p.delivered(ep, r, recvAt, release, bit) }
		if p.owner[r] == sh {
			p.pe.Shard(sh).At(recvAt, o, fn)
		} else {
			p.pe.Shard(sh).Post(p.owner[r], recvAt, o, fn)
		}
	}
}

// decideSleep mirrors Machine.decideSleep against the run-local table.
func (p *prun) decideSleep(ep *pepisode, r int, w *pwaiter, now sim.Cycles) {
	sh := p.owner[r]
	p.tableMu.Lock()
	enabled := p.table.Enabled(ep.pc, r)
	var bit sim.Cycles
	var ok bool
	if enabled {
		bit, ok = p.table.Predict(ep.pc)
	}
	p.tableMu.Unlock()
	if !enabled || !ok {
		p.stats[sh].Spins++
		return
	}
	predictedWake := p.brts[r] + bit
	stall := predictedWake - now
	fit := p.m.model.BestFit(stall, 0)
	if !fit.OK {
		p.stats[sh].Spins++
		return
	}
	st := fit.State
	w.slept = true
	w.sleeping = true
	w.state = st
	p.tl[r].AddInterval(sim.StateTransition, st.Transition, p.m.model.TransitionPower(st))
	w.sleepFrom = now + st.Transition
	p.stats[sh].Sleeps[st.Name]++
	wake := predictedWake - st.Transition
	if wake < w.sleepFrom {
		wake = w.sleepFrom
	}
	w.timer = p.at(r, wake, func() { p.timerWake(r, w, wake) })
}

// timerWake is the node's internal wake-up. Unlike the sequential path it
// consults no global release state — the node cannot know whether the root
// released until the broadcast reaches its NIC — so it only transitions the
// CPU back up and records when it is ready; the delivery classifies the
// wake as early or late against the message arrival.
func (p *prun) timerWake(r int, w *pwaiter, now sim.Cycles) {
	if w.departed || w.woken || !w.sleeping {
		return
	}
	w.woken = true
	w.sleeping = false
	w.timer = sim.Handle{}
	st := w.state
	p.chargeSleep(r, w, now)
	p.tl[r].AddInterval(sim.StateTransition, st.Transition, p.m.model.TransitionPower(st))
	w.wokeReady = now + st.Transition
}

func (p *prun) chargeSleep(r int, w *pwaiter, until sim.Cycles) {
	if until > w.sleepFrom {
		p.tl[r].AddInterval(sim.StateSleep, until-w.sleepFrom, p.m.model.SleepPower(w.state))
	}
}

// delivered handles the release message reaching rank r's NIC at recvAt,
// settling whichever waiting strategy the rank chose.
func (p *prun) delivered(ep *pepisode, r int, recvAt, release, bit sim.Cycles) {
	w := &ep.ws[r]
	if w.departed {
		return
	}
	sh := p.owner[r]
	switch {
	case w.oracle:
		// Perfect prediction: sleep exactly the stall, transitions at both
		// ends, wake just in time for the message.
		stall := recvAt - w.readyAt
		fit := p.m.model.BestFit(stall, 0)
		if fit.OK {
			st := fit.State
			p.tl[r].AddInterval(sim.StateTransition, st.Transition, p.m.model.TransitionPower(st))
			p.tl[r].AddInterval(sim.StateSleep, stall-2*st.Transition, p.m.model.SleepPower(st))
			p.tl[r].AddInterval(sim.StateTransition, st.Transition, p.m.model.TransitionPower(st))
			p.stats[sh].Sleeps[st.Name]++
		} else if stall > 0 {
			p.tl[r].AddInterval(sim.StateSpin, stall, p.m.model.SpinPower())
			p.stats[sh].Spins++
		}
		p.depart(ep, r, w, recvAt+p.m.cfg.NICWake, release, bit, recvAt)

	case w.sleeping:
		// Still asleep: the NIC wakes the CPU (external wake-up), exit
		// transition on the critical path.
		w.woken = true
		w.sleeping = false
		p.pe.Shard(sh).Cancel(w.timer)
		w.timer = sim.Handle{}
		atTime := recvAt
		if atTime < w.sleepFrom {
			atTime = w.sleepFrom
		}
		p.chargeSleep(r, w, atTime)
		st := w.state
		p.tl[r].AddInterval(sim.StateTransition, st.Transition, p.m.model.TransitionPower(st))
		w.wokeReady = atTime + st.Transition
		p.stats[sh].ExternalWakes++
		p.depart(ep, r, w, w.wokeReady+p.m.cfg.NICWake, release, bit, recvAt)

	case w.woken && w.wokeReady >= recvAt:
		// Late wake: the message was already waiting when the CPU came up.
		p.stats[sh].LateWakes++
		p.depart(ep, r, w, w.wokeReady+p.m.cfg.NICWake, release, bit, recvAt)

	case w.woken:
		// Early wake: CPU up before the message; residual spin-poll.
		p.stats[sh].EarlyWakes++
		p.tl[r].AddInterval(sim.StateSpin, recvAt+p.m.cfg.NICWake-w.wokeReady, p.m.model.SpinPower())
		p.depart(ep, r, w, recvAt+p.m.cfg.NICWake, release, bit, recvAt)

	default:
		// Spinner from arrival: detects the message at delivery.
		dep := recvAt + p.m.cfg.NICWake
		if dep > w.readyAt {
			p.tl[r].AddInterval(sim.StateSpin, dep-w.readyAt, p.m.model.SpinPower())
		}
		p.depart(ep, r, w, dep, release, bit, recvAt)
	}
}

// depart mirrors Machine.depart: BRTS update, overprediction cut-off, next
// phase. The cut-off applies to every rank that actually slept this episode
// (w.slept) rather than to the sequential path's sleeping-at-depart subset;
// the difference is confined to the same timer corner the wake-up
// classification note above describes.
func (p *prun) depart(ep *pepisode, r int, w *pwaiter, dep, release, bit, recvAt sim.Cycles) {
	w.departed = true
	if w.timer != (sim.Handle{}) {
		p.pe.Shard(p.owner[r]).Cancel(w.timer)
		w.timer = sim.Handle{}
	}
	p.brts[r] += bit
	if w.slept && !w.oracle && p.m.opts.Cutoff > 0 && bit > 0 {
		skew := recvAt - release
		penalty := w.wokeReady - (p.brts[r] + skew)
		if float64(penalty) > p.m.opts.Cutoff*float64(bit) {
			p.tableMu.Lock()
			p.table.Disable(ep.pc, r)
			p.tableMu.Unlock()
			p.stats[p.owner[r]].Disables++
		}
	}
	if ep.departed.Add(1) == int32(p.m.cfg.Nodes) {
		p.epMu.Lock()
		delete(p.episodes, ep.phase)
		p.epMu.Unlock()
	}
	p.startPhase(r, ep.phase+1, dep)
}
