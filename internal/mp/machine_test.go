package mp

import (
	"math"
	"testing"

	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/sim"
)

func testConfig(nodes int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.NoC.Nodes = nodes
	return cfg
}

// stragglerProgram builds phases where one rotating rank lags.
func stragglerProgram(pc uint64, phases int, base, extra sim.Cycles) Program {
	prog := make(Program, phases)
	for i := range prog {
		i := i
		prog[i] = Phase{
			PC: pc,
			Work: func(rank int) sim.Cycles {
				if rank == i%8 {
					return base + extra
				}
				return base
			},
		}
	}
	return prog
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Nodes = 48
	if bad.Validate() == nil {
		t.Error("48 nodes accepted")
	}
	bad = DefaultConfig()
	bad.Fanout = 1
	if bad.Validate() == nil {
		t.Error("fanout 1 accepted")
	}
	bad = DefaultConfig()
	bad.NoC = noc.DefaultConfig()
	bad.Nodes = 32
	if bad.Validate() == nil {
		t.Error("NoC size mismatch accepted")
	}
}

// TestNewMachineErrorNotPanic pins the converted constructor contract: an
// invalid Config comes back as an error for the CLI's exit-2 path, and only
// the Must wrapper panics.
func TestNewMachineErrorNotPanic(t *testing.T) {
	bad := testConfig(16)
	bad.Fanout = 1
	m, err := NewMachine(bad, Baseline())
	if err == nil || m != nil {
		t.Fatalf("NewMachine(bad) = (%v, %v), want (nil, error)", m, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewMachine(bad) did not panic")
		}
	}()
	MustNewMachine(bad, Baseline())
}

func TestTreeShape(t *testing.T) {
	m := MustNewMachine(testConfig(16), Baseline())
	if m.parent[0] != -1 {
		t.Fatal("root has a parent")
	}
	// Every non-root has a valid parent and appears in its child list.
	for r := 1; r < 16; r++ {
		p := m.parent[r]
		if p < 0 || p >= 16 {
			t.Fatalf("rank %d parent %d out of range", r, p)
		}
		found := false
		for _, c := range m.children[p] {
			if c == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d missing from parent %d's children", r, p)
		}
		if len(m.children[p]) > m.cfg.Fanout {
			t.Fatalf("parent %d has %d children (> fanout)", p, len(m.children[p]))
		}
	}
	if m.depthLat[0] != 0 {
		t.Fatal("root broadcast latency not zero")
	}
	for r := 1; r < 16; r++ {
		if m.depthLat[r] <= 0 {
			t.Fatalf("rank %d broadcast latency %v", r, m.depthLat[r])
		}
	}
}

func TestBaselineRunsAndSpins(t *testing.T) {
	m := MustNewMachine(testConfig(8), Baseline())
	res := m.Run(stragglerProgram(0x1, 6, 100*sim.Microsecond, 300*sim.Microsecond))
	if res.Stats.Episodes != 6 {
		t.Fatalf("episodes = %d, want 6", res.Stats.Episodes)
	}
	if res.Breakdown.Time[sim.StateSpin] <= 0 {
		t.Fatal("baseline never spun")
	}
	if res.Breakdown.Time[sim.StateSleep] != 0 {
		t.Fatal("baseline slept")
	}
	// Aggregate spin ~ 7 ranks x 6 phases x 300us.
	want := 7 * 6 * 300 * sim.Microsecond
	got := res.Breakdown.Time[sim.StateSpin]
	if got < want*8/10 || got > want*12/10 {
		t.Fatalf("aggregate spin = %v, want ~%v", got, want)
	}
}

func TestThriftySavesEnergy(t *testing.T) {
	prog := stragglerProgram(0x1, 10, 200*sim.Microsecond, 600*sim.Microsecond)
	base := MustNewMachine(testConfig(8), Baseline()).Run(prog)
	thr := MustNewMachine(testConfig(8), Thrifty()).Run(prog)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 0.9 {
		t.Fatalf("MP-Thrifty energy = %.3f, want clear savings", n.TotalEnergy())
	}
	if n.SpanRatio > 1.03 {
		t.Fatalf("MP-Thrifty slowdown = %.4f", n.SpanRatio)
	}
	total := 0
	for _, c := range thr.Stats.Sleeps {
		total += c
	}
	if total == 0 {
		t.Fatal("MP-Thrifty never slept")
	}
}

func TestOracleIsBoundAndExact(t *testing.T) {
	prog := stragglerProgram(0x1, 10, 200*sim.Microsecond, 600*sim.Microsecond)
	base := MustNewMachine(testConfig(8), Baseline()).Run(prog)
	thr := MustNewMachine(testConfig(8), Thrifty()).Run(prog)
	ora := MustNewMachine(testConfig(8), Oracle()).Run(prog)
	nT := thr.Breakdown.Normalize(base.Breakdown)
	nO := ora.Breakdown.Normalize(base.Breakdown)
	if nO.TotalEnergy() > nT.TotalEnergy()+1e-9 {
		t.Fatalf("oracle energy %.4f above thrifty %.4f", nO.TotalEnergy(), nT.TotalEnergy())
	}
	if math.Abs(nO.SpanRatio-1) > 0.002 {
		t.Fatalf("oracle span ratio = %.4f, want ~1", nO.SpanRatio)
	}
}

func TestWarmupSpinsFirstInstance(t *testing.T) {
	prog := stragglerProgram(0x1, 5, 100*sim.Microsecond, 400*sim.Microsecond)
	res := MustNewMachine(testConfig(8), Thrifty()).Run(prog)
	if res.Stats.Spins < 7 {
		t.Fatalf("spins = %d, want >= 7 (warm-up)", res.Stats.Spins)
	}
}

func TestBRTSReconstruction(t *testing.T) {
	prog := stragglerProgram(0x1, 8, 100*sim.Microsecond, 200*sim.Microsecond)
	m := MustNewMachine(testConfig(8), Thrifty())
	m.Run(prog)
	// Every rank's accumulated BRTS equals the root's (the broadcast
	// carries the exact BIT).
	for r := 1; r < 8; r++ {
		if m.brts[r] != m.brts[0] {
			t.Fatalf("rank %d BRTS %v != root %v", r, m.brts[r], m.brts[0])
		}
	}
}

func TestSwingTriggersCutoff(t *testing.T) {
	// Alternating long/short intervals on the cluster: last-value
	// overpredicts on the short ones; the cut-off must disable.
	prog := make(Program, 16)
	for i := range prog {
		i := i
		base := 40 * sim.Microsecond
		if i%2 == 0 {
			base = 500 * sim.Microsecond
		}
		prog[i] = Phase{PC: 0x2, Work: func(rank int) sim.Cycles {
			if rank == 0 {
				return base + base/4
			}
			return base
		}}
	}
	res := MustNewMachine(testConfig(8), Thrifty()).Run(prog)
	if res.Stats.Disables == 0 {
		t.Fatalf("cut-off never fired: %+v", res.Stats)
	}
}

func TestDeterminism(t *testing.T) {
	prog := stragglerProgram(0x1, 8, 150*sim.Microsecond, 450*sim.Microsecond)
	a := MustNewMachine(testConfig(16), Thrifty()).Run(prog)
	b := MustNewMachine(testConfig(16), Thrifty()).Run(prog)
	if a.Span != b.Span || math.Abs(a.Breakdown.TotalEnergy()-b.Breakdown.TotalEnergy()) > 1e-12 {
		t.Fatal("MP runs not deterministic")
	}
}

func TestEmptyProgram(t *testing.T) {
	res := MustNewMachine(testConfig(8), Thrifty()).Run(nil)
	if res.Span != 0 {
		t.Fatal("empty program advanced time")
	}
}

func TestScalesTo64(t *testing.T) {
	prog := stragglerProgram(0x1, 6, 200*sim.Microsecond, 500*sim.Microsecond)
	base := MustNewMachine(testConfig(64), Baseline()).Run(prog)
	thr := MustNewMachine(testConfig(64), Thrifty()).Run(prog)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 1 {
		t.Fatalf("64-node MP-Thrifty energy %.3f", n.TotalEnergy())
	}
	if n.SpanRatio > 1.05 {
		t.Fatalf("64-node MP-Thrifty slowdown %.4f", n.SpanRatio)
	}
}

func dissemConfig(nodes int) Config {
	cfg := testConfig(nodes)
	cfg.Algorithm = DisseminationBarrier
	return cfg
}

func TestAlgorithmString(t *testing.T) {
	if TreeBarrier.String() != "tree" || DisseminationBarrier.String() != "dissemination" {
		t.Error("Algorithm.String mismatch")
	}
}

func TestDisseminationRunsAndSynchronizes(t *testing.T) {
	m := MustNewMachine(dissemConfig(16), Baseline())
	res := m.Run(stragglerProgram(0x1, 6, 100*sim.Microsecond, 300*sim.Microsecond))
	if res.Stats.Episodes != 6 {
		t.Fatalf("episodes = %d, want 6", res.Stats.Episodes)
	}
	if res.Breakdown.Time[sim.StateSpin] <= 0 {
		t.Fatal("dissemination baseline never waited")
	}
}

func TestDisseminationCompletionSkewBounded(t *testing.T) {
	// Every rank's completion lands within a couple of message latencies
	// of every other's — the collective really did synchronize.
	mD := MustNewMachine(dissemConfig(64), Baseline())
	prog := stragglerProgram(0x1, 2, 100*sim.Microsecond, 200*sim.Microsecond)
	mD.Run(prog)
	lo, hi := sim.MaxCycles, sim.Cycles(0)
	for _, f := range mD.finish {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if bound := 4 * mD.net.MaxLatency(mD.cfg.MsgBytes); hi-lo > bound {
		t.Fatalf("dissemination finish skew %v exceeds %v", hi-lo, bound)
	}
}

func TestDisseminationThriftySaves(t *testing.T) {
	prog := stragglerProgram(0x1, 10, 200*sim.Microsecond, 600*sim.Microsecond)
	base := MustNewMachine(dissemConfig(16), Baseline()).Run(prog)
	thr := MustNewMachine(dissemConfig(16), Thrifty()).Run(prog)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 0.9 {
		t.Fatalf("dissemination thrifty energy = %.3f", n.TotalEnergy())
	}
	if n.SpanRatio > 1.03 {
		t.Fatalf("dissemination thrifty slowdown = %.4f", n.SpanRatio)
	}
}

func TestDisseminationVsTreeLatency(t *testing.T) {
	// For a balanced program the barrier's completion latency is the
	// collective's network depth; both algorithms must be within a small
	// factor, and dissemination must not be slower than the tree's
	// up-plus-down path at 64 nodes.
	prog := stragglerProgram(0x1, 5, 100*sim.Microsecond, 0)
	tree := MustNewMachine(testConfig(64), Baseline()).Run(prog)
	diss := MustNewMachine(dissemConfig(64), Baseline()).Run(prog)
	if diss.Span > tree.Span {
		t.Fatalf("dissemination span %v slower than tree %v", diss.Span, tree.Span)
	}
}

func TestDisseminationDeterminism(t *testing.T) {
	prog := stragglerProgram(0x1, 8, 150*sim.Microsecond, 450*sim.Microsecond)
	a := MustNewMachine(dissemConfig(16), Thrifty()).Run(prog)
	b := MustNewMachine(dissemConfig(16), Thrifty()).Run(prog)
	if a.Span != b.Span || math.Abs(a.Breakdown.TotalEnergy()-b.Breakdown.TotalEnergy()) > 1e-12 {
		t.Fatal("dissemination runs not deterministic")
	}
}

func TestDisseminationBRTSReconstruction(t *testing.T) {
	prog := stragglerProgram(0x1, 8, 100*sim.Microsecond, 200*sim.Microsecond)
	m := MustNewMachine(dissemConfig(8), Thrifty())
	m.Run(prog)
	for r := 1; r < 8; r++ {
		if m.brts[r] != m.brts[0] {
			t.Fatalf("rank %d BRTS %v != rank 0 %v", r, m.brts[r], m.brts[0])
		}
	}
}

// Accounting conservation: per-rank state time covers nearly the whole
// span under every configuration.
func TestMPAccountingConservation(t *testing.T) {
	prog := stragglerProgram(0x1, 8, 200*sim.Microsecond, 500*sim.Microsecond)
	for _, opts := range []Options{Baseline(), Thrifty(), Oracle()} {
		for _, alg := range []Algorithm{TreeBarrier, DisseminationBarrier} {
			cfg := testConfig(16)
			cfg.Algorithm = alg
			res := MustNewMachine(cfg, opts).Run(prog)
			total := res.Breakdown.TotalTime()
			// Allow one NIC-wake window per wait of boundary slop: span is
			// the max *departure*, while the last accounting interval of a
			// rank can end at its own departure, which for the slowest
			// waiter sits a hair past the span-defining rank's.
			slack := sim.Cycles(16*len(prog)) * cfg.NICWake
			upper := sim.Cycles(16)*res.Span + slack
			if total > upper {
				t.Fatalf("%s/%s: accounted %v exceeds %v", opts.Name, alg, total, upper)
			}
			if float64(total) < 0.95*float64(upper) {
				t.Fatalf("%s/%s: accounted %v far below %v (hole)", opts.Name, alg, total, upper)
			}
		}
	}
}
