package mp

import (
	"reflect"
	"testing"

	"thriftybarrier/internal/sim"
)

// jitterProgram builds phases whose per-rank work varies deterministically
// with rank and phase — enough spread that arrivals land in different
// engine windows, plus occasional near-ties to exercise the merge order.
func jitterProgram(pc uint64, phases int, base sim.Cycles) Program {
	prog := make(Program, phases)
	for i := range prog {
		i := i
		prog[i] = Phase{
			PC: pc + uint64(i%3),
			Work: func(rank int) sim.Cycles {
				w := base + sim.Cycles((rank*7919+i*104729)%997)
				if rank == (i*13)%23 {
					w += 4 * base // rotating straggler; big enough stall for sleep to fit
				}
				return w
			},
		}
	}
	return prog
}

// TestRunParallelMatchesRunBaseline pins the golden-reference policy where
// the two paths are semantically identical: with no sleep states there is
// no timer, so a single-shard parallel run must reproduce the sequential
// Result exactly — breakdown, span, and stats, bit for bit.
func TestRunParallelMatchesRunBaseline(t *testing.T) {
	for _, nodes := range []int{8, 64} {
		prog := jitterProgram(0x40, 12, 50_000)
		seqRes := MustNewMachine(testConfig(nodes), Baseline()).Run(prog)
		parRes := MustNewMachine(testConfig(nodes), Baseline()).RunParallel(prog, 1)
		if !reflect.DeepEqual(seqRes, parRes.Result) {
			t.Fatalf("nodes=%d: parallel(1) = %+v, sequential = %+v", nodes, parRes.Result, seqRes)
		}
	}
}

// TestRunParallelMatchesRunOracle is the same golden check for the oracle,
// which sleeps without a timer and so is also path-identical.
func TestRunParallelMatchesRunOracle(t *testing.T) {
	prog := jitterProgram(0x80, 12, 50_000)
	seqRes := MustNewMachine(testConfig(16), Oracle()).Run(prog)
	parRes := MustNewMachine(testConfig(16), Oracle()).RunParallel(prog, 1)
	if !reflect.DeepEqual(seqRes, parRes.Result) {
		t.Fatalf("parallel(1) = %+v, sequential = %+v", parRes.Result, seqRes)
	}
}

// TestRunParallelMatchesRunDissemination covers the dissemination
// collective's golden equality under Baseline.
func TestRunParallelMatchesRunDissemination(t *testing.T) {
	prog := jitterProgram(0xC0, 10, 40_000)
	seqRes := MustNewMachine(dissemConfig(16), Baseline()).Run(prog)
	parRes := MustNewMachine(dissemConfig(16), Baseline()).RunParallel(prog, 1)
	if !reflect.DeepEqual(seqRes, parRes.Result) {
		t.Fatalf("parallel(1) = %+v, sequential = %+v", parRes.Result, seqRes)
	}
}

// TestRunParallelDeterminismAcrossShards pins the tentpole contract: the
// complete ParallelResult — per-node energy and spin time included — is
// bit-identical at every shard count, for every variant and both
// collectives.
func TestRunParallelDeterminismAcrossShards(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts Options
	}{
		{"tree-baseline", testConfig(32), Baseline()},
		{"tree-thrifty", testConfig(32), Thrifty()},
		{"tree-oracle", testConfig(32), Oracle()},
		{"dissem-baseline", dissemConfig(32), Baseline()},
		{"dissem-thrifty", dissemConfig(32), Thrifty()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := jitterProgram(0x100, 16, 60_000)
			want := MustNewMachine(tc.cfg, tc.opts).RunParallel(prog, 1)
			for _, shards := range []int{2, 4, 8} {
				got := MustNewMachine(tc.cfg, tc.opts).RunParallel(prog, shards)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("shards=%d diverged from shards=1:\n got %+v\nwant %+v", shards, got, want)
				}
			}
		})
	}
}

// TestRunParallelThriftyMechanisms checks the thrifty path actually
// exercises its machinery under the parallel engine: episodes complete,
// sleeps happen, and the round accounting is sane.
func TestRunParallelThriftyMechanisms(t *testing.T) {
	prog := jitterProgram(0x140, 16, 80_000)
	res := MustNewMachine(testConfig(32), Thrifty()).RunParallel(prog, 4)
	if res.Stats.Episodes != 16 {
		t.Fatalf("episodes = %d, want 16", res.Stats.Episodes)
	}
	if res.Rounds != 16 {
		t.Fatalf("rounds = %d, want 16", res.Rounds)
	}
	total := 0
	for _, c := range res.Stats.Sleeps {
		total += c
	}
	if total == 0 {
		t.Fatal("thrifty run never slept")
	}
	if res.MeanRoundLatency() <= 0 {
		t.Fatalf("mean round latency = %d, want > 0", res.MeanRoundLatency())
	}
	if len(res.PerNodeEnergy) != 32 || len(res.PerNodeSpin) != 32 {
		t.Fatalf("per-node slices sized %d/%d, want 32", len(res.PerNodeEnergy), len(res.PerNodeSpin))
	}
	for r, e := range res.PerNodeEnergy {
		if e <= 0 {
			t.Fatalf("rank %d energy = %v, want > 0", r, e)
		}
	}
}

// TestRunParallel1024Nodes is the scaling smoke the issue demands: a
// 1024-node barrier round completes on the parallel engine, under both
// collectives, with the thrifty policy exercising disable bits far past
// the former 64-thread predictor limit.
func TestRunParallel1024Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node smoke skipped in -short")
	}
	for _, build := range []struct {
		name string
		cfg  Config
	}{
		{"tree", testConfig(1024)},
		{"dissemination", dissemConfig(1024)},
	} {
		t.Run(build.name, func(t *testing.T) {
			prog := jitterProgram(0x200, 4, 100_000)
			res := MustNewMachine(build.cfg, Thrifty()).RunParallel(prog, 8)
			if res.Stats.Episodes != 4 {
				t.Fatalf("episodes = %d, want 4", res.Stats.Episodes)
			}
			if res.Span <= 0 {
				t.Fatalf("span = %d, want > 0", res.Span)
			}
			if len(res.PerNodeEnergy) != 1024 {
				t.Fatalf("per-node energy has %d entries, want 1024", len(res.PerNodeEnergy))
			}
		})
	}
}

// TestRunParallelShardClamp checks out-of-range shard counts are clamped
// rather than rejected: -j larger than the node count must still run.
func TestRunParallelShardClamp(t *testing.T) {
	prog := jitterProgram(0x240, 4, 40_000)
	want := MustNewMachine(testConfig(8), Baseline()).RunParallel(prog, 1)
	for _, shards := range []int{0, -3, 64} {
		got := MustNewMachine(testConfig(8), Baseline()).RunParallel(prog, shards)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d diverged from shards=1", shards)
		}
	}
}

// TestRunParallelEmptyProgram mirrors the sequential contract.
func TestRunParallelEmptyProgram(t *testing.T) {
	res := MustNewMachine(testConfig(8), Baseline()).RunParallel(nil, 4)
	if res.Span != 0 || res.Rounds != 0 {
		t.Fatalf("empty program produced %+v", res)
	}
}
