// Package trace exports simulated runs as Chrome Trace Event JSON
// (chrome://tracing, Perfetto, Speedscope): one track per CPU, one slice
// per compute phase and per barrier wait, with wait slices named by how
// the thread waited (spin / sleep state / residual / release). It turns
// the simulator's episode records into an interactive timeline of the
// thrifty barrier's behaviour.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/sim"
)

// event is one Chrome "complete" (ph=X) trace event. Timestamps and
// durations are in microseconds, per the trace-event format.
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// metadataEvent names the process/threads in the viewer.
type metadataEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func us(c sim.Cycles) float64 { return float64(c) / 1000 }

// ChromeTrace renders the episode records of a recorded run. Records must
// come from a single machine (consistent thread count).
func ChromeTrace(records []core.EpisodeRecord, configName string) ([]byte, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: no episode records (enable recording on the machine)")
	}
	nodes := len(records[0].Arrive)
	sorted := append([]core.EpisodeRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Phase < sorted[j].Phase })

	var out []any
	out = append(out, metadataEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "thriftybarrier " + configName},
	})
	for t := 0; t < nodes; t++ {
		out = append(out, metadataEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: t,
			Args: map[string]any{"name": fmt.Sprintf("cpu%02d", t)},
		})
	}

	prevDepart := make([]sim.Cycles, nodes)
	for _, rec := range sorted {
		if len(rec.Arrive) != nodes || len(rec.Depart) != nodes {
			return nil, fmt.Errorf("trace: phase %d has inconsistent thread count", rec.Phase)
		}
		for t := 0; t < nodes; t++ {
			arrive, depart := rec.Arrive[t], rec.Depart[t]
			if arrive < prevDepart[t] || depart < arrive {
				return nil, fmt.Errorf("trace: phase %d thread %d has non-monotonic times", rec.Phase, t)
			}
			if arrive > prevDepart[t] {
				out = append(out, event{
					Name: "compute", Cat: "compute", Ph: "X",
					Ts: us(prevDepart[t]), Dur: us(arrive - prevDepart[t]),
					PID: 1, TID: t,
					Args: map[string]string{"phase": fmt.Sprint(rec.Phase), "pc": fmt.Sprintf("%#x", rec.PC)},
				})
			}
			name, cat := "wait", "wait"
			args := map[string]string{
				"phase": fmt.Sprint(rec.Phase),
				"bit":   rec.BIT.String(),
			}
			if t < len(rec.Waits) {
				w := rec.Waits[t]
				if w.Kind != "" {
					name = w.Kind
					cat = w.Kind
				}
				if w.State != "" {
					name = w.State
					args["kind"] = w.Kind
				}
			}
			if depart > arrive {
				out = append(out, event{
					Name: name, Cat: cat, Ph: "X",
					Ts: us(arrive), Dur: us(depart - arrive),
					PID: 1, TID: t, Args: args,
				})
			}
			prevDepart[t] = depart
		}
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	}, "", " ")
}
