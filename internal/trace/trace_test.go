package trace

import (
	"encoding/json"
	"testing"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
)

func recordedRun(t *testing.T, opts core.Options) []core.EpisodeRecord {
	t.Helper()
	arch := core.DefaultArch().WithNodes(8)
	prog := core.UniformProgram(0x100, 5, func(instance, thread int) cpu.Segment {
		insns := int64(100_000)
		if thread == 0 {
			insns += 400_000
		}
		return cpu.Segment{Instructions: insns}
	})
	m := core.NewMachine(arch, opts)
	m.SetRecording(true)
	return m.Run(prog).Episodes
}

type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func parse(t *testing.T, data []byte) traceFile {
	t.Helper()
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	return tf
}

func TestChromeTraceBaseline(t *testing.T) {
	recs := recordedRun(t, core.Baseline())
	data, err := ChromeTrace(recs, "Baseline")
	if err != nil {
		t.Fatal(err)
	}
	tf := parse(t, data)
	var compute, spin, release int
	for _, e := range tf.TraceEvents {
		switch e.Name {
		case "compute":
			compute++
		case "spin":
			spin++
		case "release":
			release++
		}
	}
	if compute == 0 {
		t.Error("no compute slices")
	}
	// 7 early threads x 5 episodes spin; 5 releases.
	if spin != 35 {
		t.Errorf("spin slices = %d, want 35", spin)
	}
	if release != 5 {
		t.Errorf("release slices = %d, want 5", release)
	}
}

func TestChromeTraceThriftyNamesSleepStates(t *testing.T) {
	recs := recordedRun(t, core.Thrifty())
	data, err := ChromeTrace(recs, "Thrifty")
	if err != nil {
		t.Fatal(err)
	}
	tf := parse(t, data)
	sleeps := 0
	for _, e := range tf.TraceEvents {
		// Slept waits are named after their sleep state ("Sleep1 (Halt)",
		// "Sleep2", "Sleep3"), whether they ended as pure sleeps or as
		// residual spins after an early internal wake.
		if e.Ph == "X" && len(e.Name) >= 5 && e.Name[:5] == "Sleep" {
			sleeps++
		}
	}
	if sleeps == 0 {
		t.Error("no sleep-state slices in a Thrifty trace")
	}
}

func TestChromeTracePerThreadMonotonic(t *testing.T) {
	recs := recordedRun(t, core.Thrifty())
	data, err := ChromeTrace(recs, "Thrifty")
	if err != nil {
		t.Fatal(err)
	}
	tf := parse(t, data)
	last := map[int]float64{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < last[e.TID]-1e-6 { // float epsilon from ns->us division
			t.Fatalf("tid %d: slice at %v before previous end %v", e.TID, e.Ts, last[e.TID])
		}
		last[e.TID] = e.Ts + e.Dur
	}
}

func TestChromeTraceEmptyRecords(t *testing.T) {
	if _, err := ChromeTrace(nil, "x"); err == nil {
		t.Fatal("empty records accepted")
	}
}

func TestChromeTraceThreadNames(t *testing.T) {
	recs := recordedRun(t, core.Baseline())
	data, _ := ChromeTrace(recs, "Baseline")
	tf := parse(t, data)
	names := 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names++
		}
	}
	if names != 8 {
		t.Fatalf("thread_name metadata = %d, want 8", names)
	}
}
