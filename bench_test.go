// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus microbenchmarks
// of the underlying substrates and of the public goroutine barrier.
//
// The table/figure benchmarks report the headline quantities as custom
// metrics (e.g. %savings, slowdown) so a bench run doubles as a compact
// reproduction report; the full rendered output comes from cmd/thriftybench.
package thriftybarrier_test

import (
	"strconv"
	"sync"
	"testing"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/harness/microbench"
	"thriftybarrier/internal/locks"
	"thriftybarrier/internal/mem/coherence"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/workload"
	"thriftybarrier/thrifty"
)

// --- Table and figure regeneration benches ---

// BenchmarkTable1ArchConfig assembles the Table 1 machine (all substrates)
// and verifies its static configuration.
func BenchmarkTable1ArchConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch := core.DefaultArch()
		m := core.NewMachine(arch, core.Baseline())
		if m.Proto().Config().Nodes != 64 {
			b.Fatal("wrong machine size")
		}
	}
}

// BenchmarkTable2Imbalance measures the Baseline barrier imbalance of all
// ten applications on the 64-node machine and reports the target-app mean.
func BenchmarkTable2Imbalance(b *testing.B) {
	arch := core.DefaultArch()
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := harness.Table2(arch, 1)
		var sum float64
		for _, r := range rows {
			sum += r.Measured
		}
		mean = sum / float64(len(rows))
	}
	b.ReportMetric(mean*100, "%mean-imbalance")
}

// BenchmarkTable3SleepStates builds the calibrated power model and reports
// the spin/compute power ratio the paper measures at ~85%.
func BenchmarkTable3SleepStates(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		m := power.DefaultModel()
		ratio = m.SpinPower() / m.ComputePower()
	}
	b.ReportMetric(ratio*100, "%spin/compute")
}

// BenchmarkFigure3BITStability runs the FMM variability experiment and
// reports how much more stable BIT is than BST (coefficient-of-variation
// ratio, averaged over the three barriers).
func BenchmarkFigure3BITStability(b *testing.B) {
	arch := core.DefaultArch()
	var ratio float64
	for i := 0; i < b.N; i++ {
		d := harness.Figure3(arch, 1, 11, 4, 4)
		var sum float64
		for j := range d.BarrierLabels {
			sum += d.BSTCoefVar[j] / d.BITCoefVar[j]
		}
		ratio = sum / float64(len(d.BarrierLabels))
	}
	b.ReportMetric(ratio, "BSTvar/BITvar")
}

// runMatrix executes the full five-configuration, ten-application matrix.
func runMatrix(b *testing.B) []harness.AppRun {
	b.Helper()
	return harness.RunAll(core.DefaultArch(), 1)
}

// BenchmarkFigure5Energy regenerates the normalized-energy figure and
// reports the Thrifty target-app savings (paper: ~17%).
func BenchmarkFigure5Energy(b *testing.B) {
	var savings, haltSavings float64
	for i := 0; i < b.N; i++ {
		apps := runMatrix(b)
		for _, s := range harness.Summarize(apps) {
			switch s.Config {
			case "Thrifty":
				savings = s.AvgEnergySavings
			case "Thrifty-Halt":
				haltSavings = s.AvgEnergySavings
			}
		}
	}
	b.ReportMetric(savings*100, "%savings-thrifty")
	b.ReportMetric(haltSavings*100, "%savings-halt")
}

// BenchmarkFigure6ExecTime regenerates the normalized-execution-time
// figure and reports the Thrifty target-app slowdown (paper: ~2%).
func BenchmarkFigure6ExecTime(b *testing.B) {
	var slowdown, worst float64
	for i := 0; i < b.N; i++ {
		apps := runMatrix(b)
		for _, s := range harness.Summarize(apps) {
			if s.Config == "Thrifty" {
				slowdown = s.AvgSlowdown
				worst = s.WorstSlowdown
			}
		}
	}
	b.ReportMetric(slowdown*100, "%slowdown-avg")
	b.ReportMetric(worst*100, "%slowdown-worst")
}

// BenchmarkAblationCutoff reproduces the Ocean cut-off study (§5.2:
// ~12% degradation without, <=3.5% with).
func BenchmarkAblationCutoff(b *testing.B) {
	arch := core.DefaultArch()
	var withCut, withoutCut float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationCutoff(arch, 1) {
			switch r.Variant {
			case "cutoff=10%":
				withCut = r.Time
			case "cutoff=off":
				withoutCut = r.Time
			}
		}
	}
	b.ReportMetric((withoutCut-1)*100, "%slowdown-nocutoff")
	b.ReportMetric((withCut-1)*100, "%slowdown-cutoff")
}

// BenchmarkAblationWakeup compares the three wake-up mechanisms (§3.3).
func BenchmarkAblationWakeup(b *testing.B) {
	arch := core.DefaultArch()
	var hybrid, internal float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationWakeup(arch, 1) {
			if r.App == "Ocean" {
				switch r.Variant {
				case "hybrid":
					hybrid = r.Time
				case "internal":
					internal = r.Time
				}
			}
		}
	}
	b.ReportMetric((hybrid-1)*100, "%ocean-hybrid")
	b.ReportMetric((internal-1)*100, "%ocean-internal")
}

// BenchmarkAblationPredictor compares BIT predictor policies (§3.2).
func BenchmarkAblationPredictor(b *testing.B) {
	arch := core.DefaultArch()
	var lastValue, directBST float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationPredictor(arch, 1) {
			if r.App == "FMM" {
				switch r.Variant {
				case "last-value (paper)":
					lastValue = r.Energy
				case "direct-BST":
					directBST = r.Energy
				}
			}
		}
	}
	b.ReportMetric(lastValue*100, "%energy-lastvalue")
	b.ReportMetric(directBST*100, "%energy-directBST")
}

// BenchmarkAblationPreempt exercises the underprediction filter (§3.4.2).
func BenchmarkAblationPreempt(b *testing.B) {
	arch := core.DefaultArch()
	var skipped uint64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationPreempt(arch, 1) {
			if r.Variant == "filter=4x" {
				skipped = r.Stats.SkippedUpdates
			}
		}
	}
	b.ReportMetric(float64(skipped), "skipped-updates")
}

// --- Substrate microbenchmarks ---

func BenchmarkEngineScheduleFire(b *testing.B) {
	microbench.EngineScheduleFire(0)(b)
}

// BenchmarkEngineSteadyState is the full sim half of the perf-trajectory
// suite: schedule/fire against deep pending queues and the cancel path.
// All of it must report 0 allocs/op (the flat-arena acceptance criterion).
func BenchmarkEngineSteadyState(b *testing.B) {
	for _, s := range microbench.SimSpecs() {
		b.Run(s.Name, s.Bench)
	}
}

func BenchmarkPredictorPredictUpdate(b *testing.B) {
	t := predict.NewTable(predict.DefaultConfig())
	t.Update(0x100, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bit, _ := t.Predict(0x100)
		t.Update(0x100, bit+1)
	}
}

func newBenchProtocol() *coherence.Protocol {
	cfg := coherence.DefaultConfig()
	return coherence.New(cfg, noc.New(noc.DefaultConfig()), dram.NewPlacement(cfg.Nodes, 4096))
}

func BenchmarkCoherenceReadHit(b *testing.B) {
	p := newBenchProtocol()
	p.Read(0, 0x1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Read(0, 0x1000, sim.Cycles(i))
	}
}

func BenchmarkCoherenceRemoteFill(b *testing.B) {
	p := newBenchProtocol()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stream through a large region: mostly misses.
		p.Read(i&63, uint64(i)<<6, sim.Cycles(i))
	}
}

func BenchmarkCoherenceInvalidationFanout(b *testing.B) {
	p := newBenchProtocol()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 8; n++ {
			p.Read(n, 0xF000, sim.Cycles(i*100+n))
		}
		p.Write(0, 0xF000, sim.Cycles(i*100+50))
	}
}

func BenchmarkNoCLatency(b *testing.B) {
	n := noc.New(noc.DefaultConfig())
	var sink sim.Cycles
	for i := 0; i < b.N; i++ {
		sink += n.Latency(i&63, (i>>6)&63, 72)
	}
	_ = sink
}

// BenchmarkBarrierEpisode measures one full simulated barrier episode
// (64 arrivals, prediction, sleep selection, release, wake-ups).
func BenchmarkBarrierEpisode(b *testing.B) {
	arch := core.DefaultArch()
	work := func(instance, thread int) cpu.Segment {
		insns := int64(200_000)
		if thread == instance%64 {
			insns += 400_000
		}
		return cpu.Segment{Instructions: insns}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += 16 {
		prog := core.UniformProgram(0x100, 16, work)
		m := core.NewMachine(arch, core.Thrifty())
		m.Run(prog)
	}
}

// BenchmarkSimulatedAppThrifty measures a full FMM run under Thrifty.
func BenchmarkSimulatedAppThrifty(b *testing.B) {
	arch := core.DefaultArch()
	spec := workload.FMM()
	prog := spec.Build(arch.Nodes, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewMachine(arch, core.Thrifty()).Run(prog)
	}
}

// --- Public goroutine barrier benchmarks ---

// benchBarrier runs rounds of an n-party barrier built by mk.
func benchBarrier(b *testing.B, parties int, wait func()) {
	var wg sync.WaitGroup
	rounds := b.N
	b.ResetTimer()
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				wait()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkGoroutineBarrierThrifty(b *testing.B) {
	for _, parties := range []int{2, 8} {
		parties := parties
		b.Run(strconv.Itoa(parties), func(b *testing.B) {
			bar := thrifty.New(parties, thrifty.Options{})
			benchBarrier(b, parties, func() { bar.WaitSite(1) })
		})
	}
}

// BenchmarkGoroutineBarrierChannels is the conventional comparator: a
// central-channel barrier that always parks.
func BenchmarkGoroutineBarrierChannels(b *testing.B) {
	for _, parties := range []int{2, 8} {
		parties := parties
		b.Run(strconv.Itoa(parties), func(b *testing.B) {
			bar := newChanBarrier(parties)
			benchBarrier(b, parties, bar.wait)
		})
	}
}

// BenchmarkBarrierArrival is the tentpole acceptance comparison: arrival
// throughput at 64 parties, measured where multiprocessor contention is
// actually modeled — the simulated 64-CPU machine, whose coherence
// protocol charges every check-in on the flat lock-protected counter a
// serialized trip to one hot line. The mutex baseline is that flat
// counter (the paper's Figure 2); the combining tree spreads check-ins
// across per-subgroup lines. The headline metric is rounds/Mcycle
// (simulated throughput): the tree must show ≥2× the baseline. The host
// runtime analogues are BenchmarkArrivalPath (package thrifty) and
// BenchmarkBarrierRendezvous below, whose outcomes depend on real host
// parallelism that CI containers may not have.
func BenchmarkBarrierArrival(b *testing.B) {
	for _, c := range []struct {
		name  string
		arity int
	}{
		{"mutex-flat-64", 0},
		{"tree-radix4-64", 4},
		{"tree-radix8-64", 8},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var cyc sim.Cycles
			for i := 0; i < b.N; i++ {
				cyc = harness.BarrierRoundLatency(64, c.arity, 1)
			}
			b.ReportMetric(float64(cyc), "cycles/round")
			b.ReportMetric(1e6/float64(cyc), "rounds/Mcycle")
		})
	}
}

// BenchmarkBarrierRendezvous runs full rounds (arrive, wait, wake) of the
// lock-free flat word and the combining tree against a mutex-serialized
// arrival with the pre-rewrite shape, at matching party counts. On small
// hosts these numbers are dominated by waking the parked parties, which
// every implementation pays alike; the arrival-path comparison is
// BenchmarkBarrierArrival in package thrifty.
func BenchmarkBarrierRendezvous(b *testing.B) {
	for _, s := range microbench.RuntimeSpecs() {
		b.Run(s.Name, s.Bench)
	}
}

// BenchmarkManyBarriers is the wake-up fabric acceptance sweep: the
// internal wake-up arm/cancel pair with 100 … 1M other concurrent
// barrier groups' wake-ups resident, across party counts, timing wheel
// versus the per-waiter runtime-timer baseline it replaced. The wheel's
// arm and cancel are O(1) shard-lock sections, so its ns/armcancel must
// stay flat across the sweep — within 1.5× of the 10k figure even at a
// million resident barriers — with 0 allocs/op (acceptance criteria);
// the baseline pays an O(log n) runtime timer-heap sift per op and drops
// out of the sweep past 10k, where a million live time.Timer values stop
// being a viable comparison. Each run also reports p99/p999 internal
// wake-up delivery lateness (p99-wake-us, p999-wake-us).
func BenchmarkManyBarriers(b *testing.B) {
	for _, barriers := range []int{100, 1000, 10000, 100_000, 1_000_000} {
		for _, parties := range []int{4, 16, 64} {
			suffix := strconv.Itoa(parties)
			name := "wheel-" + microbench.SizeLabel(barriers) + "x" + suffix
			b.Run(name, microbench.WheelManyBarriers(barriers, parties))
			if barriers <= 10000 {
				name = "timer-" + microbench.SizeLabel(barriers) + "x" + suffix
				b.Run(name, microbench.TimerManyBarriers(barriers, parties))
			}
		}
	}
}

// chanBarrier is a plain mutex+channel barrier (the Baseline analogue).
type chanBarrier struct {
	mu      sync.Mutex
	parties int
	count   int
	ch      chan struct{}
}

func newChanBarrier(parties int) *chanBarrier {
	return &chanBarrier{parties: parties, ch: make(chan struct{})}
}

func (b *chanBarrier) wait() {
	b.mu.Lock()
	b.count++
	if b.count == b.parties {
		b.count = 0
		old := b.ch
		b.ch = make(chan struct{})
		b.mu.Unlock()
		close(old)
		return
	}
	ch := b.ch
	b.mu.Unlock()
	<-ch
}

// --- Extension and sensitivity benches ---

// BenchmarkAblationTopology compares flat and combining-tree check-in.
func BenchmarkAblationTopology(b *testing.B) {
	arch := core.DefaultArch()
	var flat, tree float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationTopology(arch, 1) {
			if r.App == "balanced" {
				switch r.Variant {
				case "flat (paper)":
					flat = r.Time
				case "tree-8":
					tree = r.Time
				}
			}
		}
	}
	b.ReportMetric(flat, "flat-time")
	b.ReportMetric(tree, "tree8-time")
}

// BenchmarkAblationConfidence compares the cut-off with the 2-bit
// confidence estimator on Ocean.
func BenchmarkAblationConfidence(b *testing.B) {
	arch := core.DefaultArch()
	var cutoff, conf float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationConfidence(arch, 1) {
			switch r.Variant {
			case "cutoff (paper)":
				cutoff = r.Time
			case "confidence 2-bit":
				conf = r.Time
			}
		}
	}
	b.ReportMetric((cutoff-1)*100, "%slowdown-cutoff")
	b.ReportMetric((conf-1)*100, "%slowdown-confidence")
}

// BenchmarkSensitivityNodes sweeps machine sizes.
func BenchmarkSensitivityNodes(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := harness.SensitivityNodes(1)
		last = rows[len(rows)-1].Energy
	}
	b.ReportMetric(last*100, "%energy-64nodes")
}

// BenchmarkSensitivityTransition sweeps transition-latency scaling.
func BenchmarkSensitivityTransition(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows := harness.SensitivityTransition(1)
		worst = rows[len(rows)-1].Energy
	}
	b.ReportMetric(worst*100, "%energy-8xlatency")
}

// BenchmarkExtensionLocks runs the thrifty-MCS-lock experiment.
func BenchmarkExtensionLocks(b *testing.B) {
	var energy, slowdown float64
	for i := 0; i < b.N; i++ {
		sat, _ := harness.LockExperiment(1)
		energy = sat[1].Energy
		slowdown = sat[1].Time
	}
	b.ReportMetric(energy*100, "%energy-saturated")
	b.ReportMetric((slowdown-1)*100, "%slowdown-saturated")
}

// BenchmarkExtensionMP runs the message-passing-cluster experiment.
func BenchmarkExtensionMP(b *testing.B) {
	var energy float64
	for i := 0; i < b.N; i++ {
		rows := harness.MPExperiment(1)
		energy = rows[1].Energy
	}
	b.ReportMetric(energy*100, "%energy-thrifty")
}

// BenchmarkLockAcquireRelease measures one simulated lock handoff.
func BenchmarkLockAcquireRelease(b *testing.B) {
	cfg := locks.DefaultConfig()
	cfg.OpsPerThread = 10
	b.ResetTimer()
	ops := 0
	for ops < b.N {
		res := locks.NewMachine(cfg, locks.ThriftyLock()).Run()
		ops += res.Stats.Acquires
	}
}

// BenchmarkAblationConventional compares unconditional-halt and
// spin-then-halt against Thrifty (§5.1's related-technique argument).
func BenchmarkAblationConventional(b *testing.B) {
	arch := core.DefaultArch()
	var uncond, spinThen, thrifty float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationConventional(arch, 1) {
			if r.App == "FMM" {
				switch r.Variant {
				case "Uncond-Halt":
					uncond = r.Energy
				case "SpinThenHalt":
					spinThen = r.Energy
				case "Thrifty":
					thrifty = r.Energy
				}
			}
		}
	}
	b.ReportMetric(uncond*100, "%energy-uncond")
	b.ReportMetric(spinThen*100, "%energy-spinthenhalt")
	b.ReportMetric(thrifty*100, "%energy-thrifty")
}

// BenchmarkAblationDVFS compares barrier sleeping with slack-reclamation
// DVFS (§1's alternative) under rotating criticality.
func BenchmarkAblationDVFS(b *testing.B) {
	arch := core.DefaultArch()
	var dvfsTime, thriftyTime float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationDVFS(arch, 1) {
			if r.App == "Volrend" {
				switch r.Variant {
				case "DVFS":
					dvfsTime = r.Time
				case "Thrifty":
					thriftyTime = r.Time
				}
			}
		}
	}
	b.ReportMetric((dvfsTime-1)*100, "%slowdown-dvfs")
	b.ReportMetric((thriftyTime-1)*100, "%slowdown-thrifty")
}

// BenchmarkMutexThrifty measures the queue-fair predictive mutex against
// the standard library under contention.
func BenchmarkMutexThrifty(b *testing.B) {
	var m thrifty.Mutex
	var wg sync.WaitGroup
	workers := 4
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Lock()
				m.Unlock() //nolint:staticcheck // empty critical section is the point
			}
		}()
	}
	wg.Wait()
}

// BenchmarkMutexStdlib is the sync.Mutex comparator.
func BenchmarkMutexStdlib(b *testing.B) {
	var m sync.Mutex
	var wg sync.WaitGroup
	workers := 4
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Lock()
				m.Unlock() //nolint:staticcheck
			}
		}()
	}
	wg.Wait()
}
