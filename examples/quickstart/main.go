// Quickstart: the thrifty goroutine barrier on an imbalanced parallel
// loop.
//
// Eight workers iterate a two-phase computation; one rotating straggler
// makes everyone else wait several milliseconds at each barrier. After a
// one-instance warm-up, the barrier's per-call-site last-value interval
// prediction routes those long waits to the parking tiers (the software
// analogue of the paper's deep sleep states) instead of burning CPU in a
// spin loop, while near-simultaneous arrivals keep spinning for the lowest
// wake latency.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"thriftybarrier/thrifty"
)

const (
	workers    = 8
	iterations = 15
)

func main() {
	b := thrifty.New(workers, thrifty.Options{})
	var wg sync.WaitGroup
	start := time.Now()

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				// Phase 1: long, imbalanced — the rotating straggler takes
				// ~20ms while everyone else takes ~5ms. (time.Sleep stands
				// in for compute so the host scheduler does not distort
				// the intervals the predictor learns.)
				d := 5 * time.Millisecond
				if w == it%workers {
					d = 20 * time.Millisecond
				}
				time.Sleep(d)
				b.Wait() // call site A: long predicted stalls -> park tiers

				// Phase 2: short and balanced — intervals are dominated by
				// scheduler jitter, so predictions keep missing and the
				// overprediction cut-off disables this site, falling back
				// to the conventional spin-then-park policy.
				time.Sleep(2 * time.Millisecond)
				b.Wait() // call site B: jittery short stalls -> cut-off

			}
		}()
	}
	wg.Wait()

	fmt.Printf("completed %d generations in %v\n\n", b.Generation(), time.Since(start).Round(time.Millisecond))
	fmt.Println("per-call-site behaviour (the paper's PC-indexed prediction):")
	for _, s := range b.Stats().Sites {
		fmt.Printf("  site %#x: waits=%d lastBIT=%v\n", s.Key, s.Waits, s.LastBIT.Round(time.Microsecond))
		fmt.Printf("    tiers: spin=%d yield=%d timed-park=%d park=%d\n",
			s.Tiers[thrifty.TierSpin], s.Tiers[thrifty.TierYield],
			s.Tiers[thrifty.TierTimedPark], s.Tiers[thrifty.TierPark])
		fmt.Printf("    wake-ups: early(timer)=%d late(broadcast)=%d cutoffHits=%d disabled=%v\n",
			s.EarlyWakes, s.LateWakes, s.CutoffHits, s.Disabled)
		fmt.Printf("    CPU time freed by parking (vs a spin barrier): %v\n",
			s.Parked.Round(time.Millisecond))
	}
}
