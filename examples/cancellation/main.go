// Cancellation: broken-barrier semantics with WaitContext.
//
// Eight workers rendezvous repeatedly; partway through, one of them is
// given a deadline it cannot meet. When its context expires mid-wait, the
// current generation breaks: the cancelled worker returns its context
// error and every other waiter — however deep in its wait tier — returns
// thrifty.ErrBroken instead of hanging on a rendezvous that can no longer
// complete. A supervisor then Resets the barrier and the survivors carry
// on without the lost participant.
//
// Run with:
//
//	go run ./examples/cancellation
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"thriftybarrier/thrifty"
)

const workers = 8

func main() {
	b := thrifty.New(workers, thrifty.Options{
		// The stall watchdog is the telemetry companion to ErrBroken: it
		// reports generations that outlive a multiple of their predicted
		// interval (e.g. a participant that deserted without cancelling).
		OnStall: func(si thrifty.StallInfo) {
			fmt.Printf("watchdog: generation %d stalled, %d/%d arrived after %v\n",
				si.Generation, si.Arrived, si.Parties, si.Waited.Round(time.Millisecond))
		},
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				ctx := context.Background()
				d := 5 * time.Millisecond // the phase's compute
				if w == 3 && it == 3 {
					// This worker's budget covers its own compute but not
					// the straggler below: the deadline expires mid-wait.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 20*time.Millisecond)
					defer cancel()
				}
				if w == 0 && it == 3 {
					d = 100 * time.Millisecond // the straggler everyone waits on
				}
				time.Sleep(d)

				err := b.WaitContext(ctx)
				switch {
				case err == nil:
					// Rendezvous completed.
				case errors.Is(err, context.DeadlineExceeded):
					fmt.Printf("worker %d: deadline expired mid-wait at iteration %d; leaving\n", w, it)
					return
				case errors.Is(err, thrifty.ErrBroken):
					fmt.Printf("worker %d: barrier broke at iteration %d (a peer cancelled)\n", w, it)
					return
				default:
					fmt.Printf("worker %d: %v\n", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Recovery: the barrier stays broken (fail-fast) until Reset re-arms
	// it. Resize the team by building a new barrier for the survivors.
	fmt.Printf("\nbroken=%v after the storm; Reset re-arms it\n", b.Broken())
	b.Reset()

	survivors := thrifty.New(workers-1, thrifty.Options{})
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				time.Sleep(2 * time.Millisecond)
				if err := survivors.WaitContext(context.Background()); err != nil {
					fmt.Printf("survivor hit %v\n", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := b.Stats()
	fmt.Printf("first barrier: %d generations completed, %d broken\n", st.Generation, st.Breaks)
	fmt.Printf("survivor barrier: %d generations completed\n", survivors.Generation())
}
