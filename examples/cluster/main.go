// Cluster example: the thrifty barrier on a message-passing machine — the
// paper's first future-work direction (§7), built out in internal/mp.
//
// A 64-node cluster runs an FMM-like phase program whose barriers are a
// NIC-combined reduction tree plus a broadcast. Early ranks predict their
// stall from the interval history (the broadcast carries the measured BIT,
// replacing the shared-memory BIT variable) and sleep; the release
// broadcast is the external wake-up, a NIC timer the internal one.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"thriftybarrier/internal/harness"
)

func main() {
	fmt.Println(harness.RenderMP(harness.MPExperiment(1)))
	fmt.Println("The mapping from the shared-memory design:")
	fmt.Println("  barrier-flag invalidation  ->  release broadcast arriving at the NIC")
	fmt.Println("  cache-controller timer     ->  NIC timer")
	fmt.Println("  shared BIT variable        ->  BIT carried in the broadcast payload")
	fmt.Println("  cache controller combining ->  in-network (NIC) reduction tree")
}
