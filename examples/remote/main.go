// Remote quickstart: the thrifty barrier as a network service.
//
// An in-process thriftyd-style server listens on a loopback TCP port;
// four clients — separate processes in a real deployment, goroutines
// here — rendezvous on a named barrier over the framed protocol. The
// server runs the paper's §3.2 last-value interval prediction per
// barrier and answers each registration with a sleep directive (the
// Table 3 tier ladder over the wire): the client is told whether to
// spin, yield, timed-park or park, for how long, and at what poll
// cadence, so remote CPUs save the same energy local waiters do. One
// rotating straggler gives the predictor a stable ~25ms interval to
// learn; watch the directives move from the warm-up yield tier to
// timed-park once the history fills.
//
// Run with:
//
//	go run ./examples/remote
//
// Against a real daemon, start `thriftyd -listen 127.0.0.1:7474` and
// point Dial at it instead.
package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"thriftybarrier/internal/remote"
	"thriftybarrier/thrifty/client"
)

const (
	workers = 4
	rounds  = 8
)

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	srv := remote.NewServer(remote.Options{Lease: 2 * time.Second})
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	var wg sync.WaitGroup
	var mu sync.Mutex // serializes the per-round report lines
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dialer := &net.Dialer{}
			c, err := client.New(client.Options{
				ClientID: fmt.Sprintf("worker-%d", w),
				Dial: func(ctx context.Context) (net.Conn, error) {
					return dialer.DialContext(ctx, "tcp", addr)
				},
			})
			if err != nil {
				fmt.Println("client:", err)
				return
			}
			defer c.Close()

			for r := 0; r < rounds; r++ {
				// One rotating straggler: everyone else arrives early and
				// stalls for ~20ms, a stable interval the server's BIT
				// learns after one epoch. (Sleep stands in for compute.)
				d := 5 * time.Millisecond
				if w == r%workers {
					d = 25 * time.Millisecond
				}
				time.Sleep(d)
				start := time.Now()
				if err := c.Wait(context.Background(), "phase", workers); err != nil {
					fmt.Printf("worker %d round %d: %v\n", w, r, err)
					return
				}
				if w == 0 {
					mu.Lock()
					fmt.Printf("round %2d released after %v\n", r, time.Since(start).Round(time.Millisecond))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("\nserver: %d registrations, %d releases, %d breaks\n",
		st.Registrations, st.Releases, st.Breaks)
	for _, row := range srv.Snapshot() {
		fmt.Printf("barrier %q: epoch %d, gen %d, parties %d\n",
			row.Name, row.Epoch, row.Gen, row.Parties)
	}
}
