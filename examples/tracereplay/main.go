// Trace replay: estimate what the thrifty barrier would save on YOUR
// application.
//
// The workflow a user follows with a real program is: instrument each
// barrier with per-thread timestamps, dump one CSV line per dynamic
// barrier instance ("pc,dur0us,dur1us,..."), and replay it through the
// simulated machine under every configuration. This example generates a
// plausible measured trace (an 8-thread app with one imbalanced loop
// barrier and one balanced one), writes it to a temp file the way a user
// would, and replays it.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"os"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/workload"
)

func main() {
	// 1. "Measure" an application: 20 iterations of two barriers; the
	//    first has a rotating straggler (~4x), the second is balanced.
	rng := sim.NewRNG(7)
	var sb strings.Builder
	sb.WriteString("# pc, per-thread phase durations in microseconds\n")
	for it := 0; it < 20; it++ {
		sb.WriteString("0x1000")
		for th := 0; th < 8; th++ {
			d := 200 * (1 + 0.05*(2*rng.Float64()-1))
			if th == it%8 {
				d *= 4
			}
			fmt.Fprintf(&sb, ", %.1f", d)
		}
		sb.WriteString("\n0x2000")
		for th := 0; th < 8; th++ {
			fmt.Fprintf(&sb, ", %.1f", 80*(1+0.05*(2*rng.Float64()-1)))
		}
		sb.WriteString("\n")
	}
	path := "/tmp/thrifty-example-trace.csv"
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote a sample measured trace to %s\n\n", path)

	// 2. Replay it under every configuration.
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	phases, err := workload.ParseTrace(f)
	f.Close()
	if err != nil {
		panic(err)
	}
	arch := core.DefaultArch().WithNodes(workload.TraceThreads(phases))
	prog, err := workload.BuildTrace(phases, arch.CPU.IPC)
	if err != nil {
		panic(err)
	}

	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	fmt.Printf("replayed %d barrier instances on %d threads; measured imbalance %.1f%%\n\n",
		prog.Phases(), arch.Nodes, base.Breakdown.SpinFraction()*100)
	fmt.Printf("%-13s %10s %10s\n", "config", "energy", "time")
	for _, opts := range core.Configurations() {
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		fmt.Printf("%-13s %9.2f%% %9.2f%%\n", opts.Name, n.TotalEnergy()*100, n.SpanRatio*100)
	}
	fmt.Println("\n(the same replay is available as: thriftysim -trace", path+")")
}
