// Wake-up mechanisms and the overprediction cut-off on the Ocean
// pathology.
//
// Ocean's barrier interval times swing sharply between instances, so
// last-value prediction overshoots after every long instance (§5.2 of the
// paper). This example shows:
//
//  1. internal-only wake-up without a cut-off: unbounded lateness ripples
//     through subsequent intervals;
//  2. hybrid wake-up without a cut-off: the external invalidation bounds
//     each miss to one exit transition (+flush effects), but the aggregate
//     still costs ~10% — the paper's "as much as 12%";
//  3. hybrid with the 10% cut-off: prediction is disabled per
//     (thread, barrier) after the first bad miss, containing losses — the
//     paper's 3.5%.
//
// Run with:
//
//	go run ./examples/wakeup
package main

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/workload"
)

func main() {
	arch := core.DefaultArch()
	spec := workload.Ocean()
	prog := spec.Build(arch.Nodes, 1)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	fmt.Printf("Ocean on %d nodes: baseline span %v, imbalance %.2f%%\n\n",
		arch.Nodes, base.Span, base.Breakdown.SpinFraction()*100)
	fmt.Printf("%-34s %8s %8s %7s %7s %7s\n", "variant", "energy", "time", "ext", "late", "disab")

	run := func(label string, opts core.Options) {
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		fmt.Printf("%-34s %7.2f%% %7.2f%% %7d %7d %7d\n",
			label, n.TotalEnergy()*100, n.SpanRatio*100,
			res.Stats.ExternalWakes, res.Stats.LateWakes, res.Stats.Disables)
	}

	internalNoCut := core.Thrifty()
	internalNoCut.Wakeup = core.WakeupInternal
	internalNoCut.Cutoff = 0
	run("internal-only, no cut-off", internalNoCut)

	hybridNoCut := core.Thrifty()
	hybridNoCut.Cutoff = 0
	run("hybrid, no cut-off", hybridNoCut)

	externalOnly := core.Thrifty()
	externalOnly.Wakeup = core.WakeupExternal
	run("external-only, 10% cut-off", externalOnly)

	run("hybrid, 10% cut-off (paper)", core.Thrifty())

	run("oracle halt (perfect prediction)", core.OracleHalt())

	fmt.Println("\nThe hybrid mechanism bounds each late wake to one exit transition;")
	fmt.Println("the cut-off stops the repeated misses Ocean's swinging intervals cause.")
}
