// Locks example: energy-aware waiting on a contended MCS queue lock — the
// paper's second future-work direction (§7), built out in internal/locks.
//
// Waiters predict their wait as queue position x learned service time and
// sleep when it covers a sleep state's round trip. Locks punish late wakes
// harder than barriers (every sleeper is a future lock holder), so the
// thrifty lock adds three refinements over the barrier policy, and this
// example shows what happens without them (the Naive variant): convoys.
//
//  1. graded state selection: the exit transition must fit inside the
//     anticipation window;
//  2. re-sleep: an early-woken waiter still deep in the queue goes back to
//     sleep instead of spinning the remainder;
//  3. pre-wake: the new lock holder pokes the next sleeper, overlapping
//     its exit transition with the critical section.
//
// Run with:
//
//	go run ./examples/locks
package main

import (
	"fmt"

	"thriftybarrier/internal/harness"
)

func main() {
	sat, mod := harness.LockExperiment(1)
	fmt.Println(harness.RenderLocks(sat, mod))
	fmt.Println("LockIdle is time the lock sat free waiting for a waking holder —")
	fmt.Println("the convoy cost unique to locks that the refinements minimize.")
}
