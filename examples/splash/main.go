// SPLASH example: reproduce the paper's FMM analysis on the simulated
// 64-node CC-NUMA machine.
//
// This runs the Figure 3 experiment (the barrier-interval-time stability
// of FMM's three main-loop barriers that justifies PC-indexed last-value
// prediction) and then compares all five system configurations on FMM —
// one column of Figures 5 and 6.
//
// Run with:
//
//	go run ./examples/splash
package main

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/workload"
)

func main() {
	arch := core.DefaultArch()

	fmt.Println(harness.RenderFigure3(harness.Figure3(arch, 1, 11, 4, 4)))
	fmt.Println()

	spec := workload.FMM()
	app := harness.RunApp(arch, spec, 1, core.Configurations())
	fmt.Printf("FMM on %d nodes (measured imbalance %.2f%%):\n\n", arch.Nodes, app.Measured*100)
	fmt.Printf("%-13s %9s %9s %9s %9s %9s %9s\n",
		"config", "energy", "time", "compute", "spin", "trans", "sleep")
	for _, run := range app.Runs {
		n := run.Norm
		fmt.Printf("%-13s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n",
			run.Config.Name, n.TotalEnergy()*100, n.SpanRatio*100,
			n.Energy[sim.StateCompute]*100, n.Energy[sim.StateSpin]*100,
			n.Energy[sim.StateTransition]*100, n.Energy[sim.StateSleep]*100)
	}
	fmt.Println("\n(energy/segment columns normalized to Baseline total energy;")
	fmt.Println(" time column is wall-clock span vs Baseline)")
}
