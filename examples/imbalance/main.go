// Imbalance sweep: how the thrifty barrier's savings grow with barrier
// imbalance.
//
// The paper's Table 2 / Figure 5 relationship in one picture: a synthetic
// application is swept from perfectly balanced to Volrend-like imbalance
// (straggler factor 0 to 1), and for each point the Thrifty and
// Thrifty-Halt energy (relative to Baseline) and the Thrifty slowdown are
// reported. Savings should track the imbalance while the slowdown stays
// bounded — the paper's headline claim.
//
// Run with:
//
//	go run ./examples/imbalance
package main

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/stats"
	"thriftybarrier/internal/workload"
)

func main() {
	arch := core.DefaultArch().WithNodes(32)
	fmt.Println("straggler  imbalance  Thrifty-E  Halt-E   Thrifty-T   savings bar")
	for _, straggler := range []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 1.0} {
		spec := workload.Spec{
			Name:            "sweep",
			TargetImbalance: straggler / (1 + straggler),
			Iterations:      16,
			Seed:            99,
			Loop: []workload.BarrierSpec{{
				Label:     "phase",
				BaseInstr: 2_000_000,
				Straggler: straggler,
				Rotate:    true,
				Noise:     0.04,
			}},
		}
		prog := spec.Build(arch.Nodes, 1)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		thr := core.NewMachine(arch, core.Thrifty()).Run(prog)
		hlt := core.NewMachine(arch, core.ThriftyHalt()).Run(prog)

		imb := base.Breakdown.SpinFraction()
		nT := thr.Breakdown.Normalize(base.Breakdown)
		nH := hlt.Breakdown.Normalize(base.Breakdown)
		fmt.Printf("%8.2f   %8.2f%%  %8.2f%% %8.2f%%  %9.4f   |%s|\n",
			straggler, imb*100, nT.TotalEnergy()*100, nH.TotalEnergy()*100,
			nT.SpanRatio, stats.Bar(1-nT.TotalEnergy(), 30))
	}
	fmt.Println("\nThrifty-E / Halt-E: normalized energy (lower is better);")
	fmt.Println("Thrifty-T: span ratio vs Baseline (1.0 = no slowdown).")
}
