// Package barriersim is the public entry point to the thrifty-barrier
// simulator: run one of the calibrated SPLASH-2 stand-in applications — or
// your own measured barrier trace — on the simulated 64-node CC-NUMA
// machine under any of the paper's configurations, and get back the
// normalized energy/time breakdown the paper reports.
//
// The heavy machinery (coherence protocol, power model, workloads,
// harness) lives under internal/; this package re-exposes the stable
// surface a downstream user needs:
//
//	res, _ := barriersim.Run(barriersim.Request{App: "FMM", Config: barriersim.Thrifty})
//	fmt.Printf("energy vs baseline: %.1f%%\n", res.EnergyVsBaseline*100)
package barriersim

import (
	"fmt"
	"io"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/workload"
)

// Config names a barrier configuration of the paper's evaluation.
type Config string

// The five systems of the evaluation (§5.1), plus the comparison policies.
const (
	Baseline     Config = "Baseline"
	ThriftyHalt  Config = "Thrifty-Halt"
	OracleHalt   Config = "Oracle-Halt"
	Thrifty      Config = "Thrifty"
	Ideal        Config = "Ideal"
	SpinThenHalt Config = "SpinThenHalt"
	UncondHalt   Config = "Uncond-Halt"
)

// options resolves a Config to the core configuration.
func options(c Config) (core.Options, error) {
	switch c {
	case Baseline:
		return core.Baseline(), nil
	case ThriftyHalt:
		return core.ThriftyHalt(), nil
	case OracleHalt:
		return core.OracleHalt(), nil
	case Thrifty, "":
		return core.Thrifty(), nil
	case Ideal:
		return core.Ideal(), nil
	case SpinThenHalt:
		return core.SpinThenHalt(), nil
	case UncondHalt:
		return core.UnconditionalHalt(), nil
	default:
		return core.Options{}, fmt.Errorf("barriersim: unknown config %q", c)
	}
}

// Apps lists the available applications in Table 2 order.
func Apps() []string {
	var out []string
	for _, s := range workload.All() {
		out = append(out, s.Name)
	}
	return out
}

// Request selects what to simulate. Exactly one of App or Trace must be
// set.
type Request struct {
	// App is a Table 2 application name (see Apps).
	App string
	// Trace replays a measured barrier trace (CSV "pc,dur0us,dur1us,...";
	// the thread count must be a power of two <= 64).
	Trace io.Reader
	// Config is the barrier configuration (default Thrifty).
	Config Config
	// Nodes overrides the machine size for App runs (default 64; must be a
	// power of two <= 64). Ignored for traces, which fix the size.
	Nodes int
	// Seed drives the workload randomness (default 1).
	Seed uint64
}

// Breakdown is an energy or time split by processor state, as fractions of
// the Baseline total (the stacked bars of Figures 5 and 6).
type Breakdown struct {
	Compute, Spin, Transition, Sleep float64
}

// Result is the outcome of one simulated run, normalized against the
// Baseline configuration of the same machine and program.
type Result struct {
	// App names what ran.
	App string
	// Config is the configuration that ran.
	Config Config
	// Imbalance is the Baseline barrier imbalance (Table 2's metric).
	Imbalance float64
	// EnergyVsBaseline is total energy relative to Baseline (1.0 = equal).
	EnergyVsBaseline float64
	// TimeVsBaseline is wall-clock span relative to Baseline.
	TimeVsBaseline float64
	// Energy and Time are the per-state splits (Figures 5/6 bars).
	Energy, Time Breakdown
	// Episodes is the number of dynamic barrier instances.
	Episodes int
	// Sleeps counts sleeps per state name.
	Sleeps map[string]int
}

// Run simulates the request and returns the normalized result.
func Run(req Request) (Result, error) {
	opts, err := options(req.Config)
	if err != nil {
		return Result{}, err
	}
	if req.Seed == 0 {
		req.Seed = 1
	}

	var prog core.SliceProgram
	var name string
	var nodes int
	switch {
	case req.App != "" && req.Trace != nil:
		return Result{}, fmt.Errorf("barriersim: set App or Trace, not both")
	case req.Trace != nil:
		phases, err := workload.ParseTrace(req.Trace)
		if err != nil {
			return Result{}, err
		}
		nodes = workload.TraceThreads(phases)
		if nodes&(nodes-1) != 0 || nodes > 64 {
			return Result{}, fmt.Errorf("barriersim: trace has %d threads; need a power of two <= 64", nodes)
		}
		arch := core.DefaultArch().WithNodes(nodes)
		prog, err = workload.BuildTrace(phases, arch.CPU.IPC)
		if err != nil {
			return Result{}, err
		}
		name = "trace"
	case req.App != "":
		spec, ok := workload.ByName(req.App)
		if !ok {
			return Result{}, fmt.Errorf("barriersim: unknown application %q (see Apps())", req.App)
		}
		nodes = req.Nodes
		if nodes == 0 {
			nodes = 64
		}
		if nodes <= 0 || nodes&(nodes-1) != 0 || nodes > 64 {
			return Result{}, fmt.Errorf("barriersim: nodes %d not a power of two <= 64", nodes)
		}
		prog = spec.Build(nodes, req.Seed)
		name = spec.Name
	default:
		return Result{}, fmt.Errorf("barriersim: set App or Trace")
	}

	arch := core.DefaultArch().WithNodes(nodes)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	res := core.NewMachine(arch, opts).Run(prog)
	n := res.Breakdown.Normalize(base.Breakdown)

	cfg := req.Config
	if cfg == "" {
		cfg = Thrifty
	}
	return Result{
		App:              name,
		Config:           cfg,
		Imbalance:        base.Breakdown.SpinFraction(),
		EnergyVsBaseline: n.TotalEnergy(),
		TimeVsBaseline:   n.SpanRatio,
		Energy: Breakdown{
			Compute:    n.Energy[sim.StateCompute],
			Spin:       n.Energy[sim.StateSpin],
			Transition: n.Energy[sim.StateTransition],
			Sleep:      n.Energy[sim.StateSleep],
		},
		Time: Breakdown{
			Compute:    n.Time[sim.StateCompute],
			Spin:       n.Time[sim.StateSpin],
			Transition: n.Time[sim.StateTransition],
			Sleep:      n.Time[sim.StateSleep],
		},
		Episodes: res.Stats.Episodes,
		Sleeps:   res.Stats.Sleeps,
	}, nil
}
