package barriersim

import (
	"strings"
	"testing"
)

func TestApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 10 {
		t.Fatalf("apps = %d, want 10", len(apps))
	}
	if apps[0] != "Volrend" || apps[9] != "Radiosity" {
		t.Fatalf("apps order wrong: %v", apps)
	}
}

func TestRunApp(t *testing.T) {
	res, err := Run(Request{App: "FMM", Config: Thrifty, Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "FMM" || res.Config != Thrifty {
		t.Fatalf("identity wrong: %+v", res)
	}
	if res.EnergyVsBaseline >= 1 {
		t.Errorf("FMM Thrifty energy = %v, want < 1", res.EnergyVsBaseline)
	}
	if res.TimeVsBaseline > 1.05 {
		t.Errorf("FMM Thrifty time = %v", res.TimeVsBaseline)
	}
	if res.Imbalance <= 0.05 {
		t.Errorf("imbalance = %v", res.Imbalance)
	}
	if res.Episodes == 0 || len(res.Sleeps) == 0 {
		t.Errorf("stats empty: %+v", res)
	}
	sum := res.Energy.Compute + res.Energy.Spin + res.Energy.Transition + res.Energy.Sleep
	if diff := sum - res.EnergyVsBaseline; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy breakdown sum %v != total %v", sum, res.EnergyVsBaseline)
	}
}

func TestRunDefaultsToThrifty(t *testing.T) {
	res, err := Run(Request{App: "Radiosity", Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != Thrifty {
		t.Fatalf("default config = %v", res.Config)
	}
}

func TestRunBaselineIsUnity(t *testing.T) {
	res, err := Run(Request{App: "Radix", Config: Baseline, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyVsBaseline < 0.999 || res.EnergyVsBaseline > 1.001 {
		t.Fatalf("baseline energy = %v", res.EnergyVsBaseline)
	}
}

func TestRunTrace(t *testing.T) {
	trace := "1, 100, 100, 100, 400\n1, 100, 100, 100, 400\n1, 100, 100, 100, 400\n"
	res, err := Run(Request{Trace: strings.NewReader(trace), Config: ThriftyHalt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 3 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	if res.Imbalance < 0.3 {
		t.Fatalf("trace imbalance = %v, straggler invisible", res.Imbalance)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []Request{
		{},                            // neither app nor trace
		{App: "Raytrace"},             // excluded by the paper
		{App: "FMM", Nodes: 48},       // not a power of two
		{App: "FMM", Config: "Bogus"}, // unknown config
		{App: "FMM", Trace: strings.NewReader("x")}, // both set
		{Trace: strings.NewReader("1,1,1,1")},       // 3 threads, not pow2
		{Trace: strings.NewReader("")},              // empty trace
	}
	for i, req := range cases {
		if _, err := Run(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAllConfigsResolve(t *testing.T) {
	for _, c := range []Config{Baseline, ThriftyHalt, OracleHalt, Thrifty, Ideal, SpinThenHalt, UncondHalt} {
		if _, err := Run(Request{App: "Radiosity", Config: c, Nodes: 8}); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
}
