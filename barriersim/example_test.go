package barriersim_test

import (
	"fmt"

	"thriftybarrier/barriersim"
)

// Example runs the Radiosity stand-in under the Baseline configuration on
// a small machine — deterministic, so the normalized energy is exactly
// baseline's.
func Example() {
	res, err := barriersim.Run(barriersim.Request{
		App:    "Radiosity",
		Config: barriersim.Baseline,
		Nodes:  8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s under %s: energy %.2f, episodes %d\n",
		res.App, res.Config, res.EnergyVsBaseline, res.Episodes)
	// Output: Radiosity under Baseline: energy 1.00, episodes 20
}
